//! `procsim` — a simulated sysstat/`/proc` substrate.
//!
//! ASDF's black-box fingerpointing consumes OS performance counters sampled
//! once per second by the `sadc` utility from the sysstat package. This
//! crate stands in for `/proc` on a simulated cluster: each node is a
//! [`node::NodeSim`] that turns realized resource usage
//! ([`activity::Activity`], reported by the cluster simulator) into the
//! full metric inventory the paper cites — 64 node-level metrics, 18 per
//! network interface, and 19 per tracked process
//! (see [`metrics`]).
//!
//! The synthesis is deterministic per seed, which is what makes the
//! reproduction's end-to-end experiments exactly repeatable.
//!
//! # Examples
//!
//! ```
//! use procsim::activity::Activity;
//! use procsim::node::{NodeSim, NodeSpec};
//!
//! let mut node = NodeSim::new(NodeSpec::ec2_large("slave-1"), 1);
//! let frame = node.tick(&Activity::idle().with_cpu_user(1.5), &[]);
//! assert_eq!(frame.node.len(), 64);
//! assert_eq!(frame.ifaces[0].1.len(), 18);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activity;
pub mod metrics;
pub mod node;
pub mod syscalls;

pub use activity::{Activity, ProcessActivity};
pub use node::{MetricFrame, NodeSim, NodeSpec};
