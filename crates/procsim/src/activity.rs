//! Activity demands: what the cluster simulation reports as *actual
//! resource usage* for one node, one second at a time.
//!
//! `procsim` is purely observational: contention and scheduling decisions
//! are made by the cluster simulator (`hadoop-sim`), which then reports the
//! realized usage here. [`Activity`] values are additive, so independent
//! contributors (map tasks, HDFS transfers, daemons, injected fault
//! processes) each build their own `Activity` and the node sums them.

use std::ops::{Add, AddAssign};

/// Realized node-level resource usage for one second.
///
/// All rates are per-second quantities; CPU is measured in core-seconds
/// (so a node with 4 cores can absorb up to 4.0 per second).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Activity {
    /// Core-seconds of user-mode CPU consumed.
    pub cpu_user: f64,
    /// Core-seconds of kernel-mode CPU consumed.
    pub cpu_system: f64,
    /// Average number of tasks blocked on I/O during the second.
    pub io_wait_tasks: f64,
    /// Kilobytes read from disk.
    pub disk_read_kb: f64,
    /// Kilobytes written to disk.
    pub disk_write_kb: f64,
    /// Kilobytes received from the network.
    pub net_rx_kb: f64,
    /// Kilobytes transmitted to the network.
    pub net_tx_kb: f64,
    /// Application memory in use, in megabytes (a level, not a rate;
    /// contributors sum their resident footprints).
    pub mem_used_mb: f64,
    /// Processes spawned during the second.
    pub procs_spawned: f64,
    /// Average number of runnable tasks.
    pub running_tasks: f64,
    /// TCP connections opened (active + passive).
    pub tcp_conns_opened: f64,
    /// Currently open TCP sockets attributable to this activity.
    pub tcp_socks: f64,
    /// Fraction of inbound packets dropped (fault knob; the *maximum*
    /// across contributors is used rather than the sum).
    pub packet_loss: f64,
}

impl Activity {
    /// No activity at all (the baseline OS hum is added by the node model).
    pub fn idle() -> Self {
        Activity::default()
    }

    /// Total CPU core-seconds (user + system).
    pub fn cpu_total(&self) -> f64 {
        self.cpu_user + self.cpu_system
    }

    /// Builder-style setter for user CPU.
    #[must_use]
    pub fn with_cpu_user(mut self, v: f64) -> Self {
        self.cpu_user = v;
        self
    }

    /// Builder-style setter for system CPU.
    #[must_use]
    pub fn with_cpu_system(mut self, v: f64) -> Self {
        self.cpu_system = v;
        self
    }

    /// Builder-style setter for disk reads.
    #[must_use]
    pub fn with_disk_read_kb(mut self, v: f64) -> Self {
        self.disk_read_kb = v;
        self
    }

    /// Builder-style setter for disk writes.
    #[must_use]
    pub fn with_disk_write_kb(mut self, v: f64) -> Self {
        self.disk_write_kb = v;
        self
    }

    /// Builder-style setter for network receive volume.
    #[must_use]
    pub fn with_net_rx_kb(mut self, v: f64) -> Self {
        self.net_rx_kb = v;
        self
    }

    /// Builder-style setter for network transmit volume.
    #[must_use]
    pub fn with_net_tx_kb(mut self, v: f64) -> Self {
        self.net_tx_kb = v;
        self
    }

    /// Builder-style setter for memory footprint.
    #[must_use]
    pub fn with_mem_used_mb(mut self, v: f64) -> Self {
        self.mem_used_mb = v;
        self
    }

    /// Builder-style setter for runnable tasks.
    #[must_use]
    pub fn with_running_tasks(mut self, v: f64) -> Self {
        self.running_tasks = v;
        self
    }
}

impl Add for Activity {
    type Output = Activity;

    fn add(mut self, rhs: Activity) -> Activity {
        self += rhs;
        self
    }
}

impl AddAssign for Activity {
    fn add_assign(&mut self, rhs: Activity) {
        self.cpu_user += rhs.cpu_user;
        self.cpu_system += rhs.cpu_system;
        self.io_wait_tasks += rhs.io_wait_tasks;
        self.disk_read_kb += rhs.disk_read_kb;
        self.disk_write_kb += rhs.disk_write_kb;
        self.net_rx_kb += rhs.net_rx_kb;
        self.net_tx_kb += rhs.net_tx_kb;
        self.mem_used_mb += rhs.mem_used_mb;
        self.procs_spawned += rhs.procs_spawned;
        self.running_tasks += rhs.running_tasks;
        self.tcp_conns_opened += rhs.tcp_conns_opened;
        self.tcp_socks += rhs.tcp_socks;
        // Loss fractions do not add; the worst contributor dominates.
        self.packet_loss = self.packet_loss.max(rhs.packet_loss);
    }
}

/// Realized per-process resource usage for one second, for processes the
/// monitoring pipeline tracks individually (in the Hadoop deployment: the
/// DataNode and TaskTracker JVMs).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProcessActivity {
    /// Core-seconds of user-mode CPU.
    pub cpu_user: f64,
    /// Core-seconds of kernel-mode CPU.
    pub cpu_system: f64,
    /// Kilobytes read from disk.
    pub read_kb: f64,
    /// Kilobytes written to disk.
    pub write_kb: f64,
    /// Resident set size, in megabytes.
    pub rss_mb: f64,
    /// Thread count.
    pub threads: f64,
    /// Open file descriptors.
    pub fds: f64,
}

impl Add for ProcessActivity {
    type Output = ProcessActivity;

    fn add(mut self, rhs: ProcessActivity) -> ProcessActivity {
        self += rhs;
        self
    }
}

impl AddAssign for ProcessActivity {
    fn add_assign(&mut self, rhs: ProcessActivity) {
        self.cpu_user += rhs.cpu_user;
        self.cpu_system += rhs.cpu_system;
        self.read_kb += rhs.read_kb;
        self.write_kb += rhs.write_kb;
        self.rss_mb += rhs.rss_mb;
        self.threads += rhs.threads;
        self.fds += rhs.fds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_addition_is_componentwise() {
        let a = Activity::idle()
            .with_cpu_user(1.0)
            .with_disk_read_kb(100.0)
            .with_running_tasks(2.0);
        let b = Activity::idle()
            .with_cpu_user(0.5)
            .with_cpu_system(0.25)
            .with_disk_read_kb(50.0);
        let sum = a + b;
        assert_eq!(sum.cpu_user, 1.5);
        assert_eq!(sum.cpu_system, 0.25);
        assert_eq!(sum.disk_read_kb, 150.0);
        assert_eq!(sum.running_tasks, 2.0);
        assert_eq!(sum.cpu_total(), 1.75);
    }

    #[test]
    fn packet_loss_takes_the_maximum_not_the_sum() {
        let mut a = Activity::idle();
        a.packet_loss = 0.5;
        let mut b = Activity::idle();
        b.packet_loss = 0.2;
        assert_eq!((a + b).packet_loss, 0.5);
        assert_eq!((b + a).packet_loss, 0.5);
    }

    #[test]
    fn process_activity_adds() {
        let a = ProcessActivity {
            cpu_user: 0.2,
            rss_mb: 100.0,
            threads: 10.0,
            ..Default::default()
        };
        let b = ProcessActivity {
            cpu_user: 0.3,
            write_kb: 64.0,
            ..Default::default()
        };
        let s = a + b;
        assert_eq!(s.cpu_user, 0.5);
        assert_eq!(s.rss_mb, 100.0);
        assert_eq!(s.write_kb, 64.0);
    }

    #[test]
    fn idle_is_all_zero() {
        assert_eq!(Activity::idle(), Activity::default());
        assert_eq!(Activity::idle().cpu_total(), 0.0);
    }
}
