//! Simulated per-process system-call traces.
//!
//! The ASDF paper's future-work section (§5) proposes "a strace module
//! that tracks all of the system calls made by a given process ... to
//! detect and diagnose anomalies by building a probabilistic model of the
//! order and timing of system calls". This module provides the substrate:
//! per-second counts of system calls by category, synthesized from the
//! same realized [`ProcessActivity`] that drives the `/proc` metrics.
//!
//! The synthesis encodes the signature that makes syscall tracing useful
//! for hang diagnosis: a process that is *computing* makes almost no
//! system calls, a process doing I/O makes many, and an *idle* process
//! makes a steady trickle of timer/poll calls.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::activity::ProcessActivity;

/// System-call categories traced per process, in vector order.
pub const SYSCALL_CATEGORIES: [&str; 10] = [
    "read",
    "write",
    "futex",
    "epoll_wait",
    "clone",
    "mmap",
    "recvfrom",
    "sendto",
    "fsync",
    "stat",
];

/// Number of traced syscall categories.
pub const SYSCALL_CATEGORY_COUNT: usize = SYSCALL_CATEGORIES.len();

/// Synthesizes one second of per-category syscall counts for a process
/// with realized activity `p`, using `rng` for trace jitter.
///
/// Deterministic given the rng state; callers that need reproducibility
/// should use a dedicated seeded rng (as [`crate::node::NodeSim`] does).
pub fn syscall_rates(p: &ProcessActivity, rng: &mut SmallRng) -> Vec<f64> {
    let mut v = vec![0.0; SYSCALL_CATEGORY_COUNT];
    let jitter = |rng: &mut SmallRng, x: f64| {
        if x <= 0.0 {
            0.0
        } else {
            x * (0.92 + 0.16 * rng.gen::<f64>())
        }
    };
    // I/O is issued in ~64 KB chunks.
    v[0] = jitter(rng, 4.0 + p.read_kb / 64.0); // read
    v[1] = jitter(rng, 2.0 + p.write_kb / 64.0); // write
                                                 // Thread synchronization scales with threads and CPU activity.
    v[2] = jitter(
        rng,
        6.0 * p.threads.max(1.0) + 40.0 * (p.cpu_user + p.cpu_system),
    ); // futex
       // Event loops poll steadily even when idle.
    v[3] = jitter(rng, 12.0 + 2.0 * p.threads.max(1.0)); // epoll_wait
    v[4] = jitter(rng, 0.02 * p.threads.max(1.0)); // clone
    v[5] = jitter(rng, 0.5 + (p.read_kb + p.write_kb) / 4096.0); // mmap
                                                                 // Network I/O in ~8 KB segments (the JVM's socket buffer drain size).
    v[6] = jitter(rng, 1.0 + p.read_kb / 8.0 * 0.2); // recvfrom
    v[7] = jitter(rng, 1.0 + p.write_kb / 8.0 * 0.2); // sendto
    v[8] = jitter(rng, p.write_kb / 1024.0); // fsync
    v[9] = jitter(rng, 3.0 + 0.5 * p.fds.max(1.0) / 10.0); // stat
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn categories_are_unique_and_counted() {
        let set: std::collections::HashSet<&str> = SYSCALL_CATEGORIES.iter().copied().collect();
        assert_eq!(set.len(), SYSCALL_CATEGORY_COUNT);
        assert_eq!(SYSCALL_CATEGORY_COUNT, 10);
    }

    #[test]
    fn io_heavy_process_reads_and_writes() {
        let busy = ProcessActivity {
            read_kb: 32_768.0,
            write_kb: 16_384.0,
            threads: 40.0,
            ..Default::default()
        };
        let idle = ProcessActivity {
            threads: 40.0,
            ..Default::default()
        };
        let b = syscall_rates(&busy, &mut rng());
        let i = syscall_rates(&idle, &mut rng());
        assert!(
            b[0] > 50.0 * i[0].max(1.0),
            "read calls scale with read volume"
        );
        assert!(
            b[1] > 20.0 * i[1].max(1.0),
            "write calls scale with write volume"
        );
        assert!(b[8] > i[8], "fsync follows writes");
    }

    #[test]
    fn cpu_bound_process_mostly_futexes() {
        let spin = ProcessActivity {
            cpu_user: 1.0,
            threads: 10.0,
            ..Default::default()
        };
        let v = syscall_rates(&spin, &mut rng());
        assert!(v[2] > v[0] + v[1], "compute shows as futex churn, not I/O");
    }

    #[test]
    fn idle_process_still_polls() {
        let idle = ProcessActivity {
            threads: 20.0,
            ..Default::default()
        };
        let v = syscall_rates(&idle, &mut rng());
        assert!(v[3] > 10.0, "event loops poll while idle");
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rates_are_deterministic_per_rng_state() {
        let p = ProcessActivity {
            read_kb: 100.0,
            threads: 5.0,
            ..Default::default()
        };
        assert_eq!(syscall_rates(&p, &mut rng()), syscall_rates(&p, &mut rng()));
    }
}
