//! `asdf` — the operator CLI of the reproduction.
//!
//! Subcommands:
//!
//! * `demo [--fault NAME] [--slaves N] [--secs S] [--seed X]` — train,
//!   inject, fingerpoint; prints the per-window score timeline and the
//!   alarm verdicts for every node.
//! * `dump-config [--slaves N]` — print the generated fingerpointing
//!   pipeline in the paper's configuration dialect (ready to edit).
//! * `run-config <FILE> [--slaves N] [--secs S] [--fault NAME]` — execute
//!   a user-supplied configuration file against a simulated cluster and
//!   print everything the `print` sinks render.
//!
//! Fault names: CPUHog, DiskHog, HADOOP-1036, HADOOP-1152, HADOOP-2080,
//! PacketLoss.

use asdf::experiments::{self, CampaignConfig};
use asdf::pipeline::{AsdfBuilder, AsdfOptions};
use asdf_core::config::Config;
use asdf_core::dag::Dag;
use asdf_core::engine::TickEngine;
use asdf_core::registry::ModuleRegistry;
use asdf_core::time::TickDuration;
use asdf_rpc::daemons::ClusterHandle;
use hadoop_sim::cluster::{Cluster, ClusterConfig};
use hadoop_sim::faults::{FaultKind, FaultSpec};

fn usage() -> ! {
    eprintln!(
        "usage: asdf <demo|dump-config|run-config> [options]\n\
         \n\
         asdf demo        [--fault NAME] [--slaves N] [--secs S] [--seed X]\n\
         asdf dump-config [--slaves N]\n\
         asdf run-config FILE [--slaves N] [--secs S] [--fault NAME] [--seed X]\n\
         \n\
         faults: CPUHog DiskHog HADOOP-1036 HADOOP-1152 HADOOP-2080 PacketLoss"
    );
    std::process::exit(2);
}

fn parse_fault(name: &str) -> FaultKind {
    FaultKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown fault `{name}`");
            usage()
        })
}

struct Opts {
    fault: Option<FaultKind>,
    slaves: usize,
    secs: u64,
    seed: u64,
    file: Option<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        fault: None,
        slaves: 10,
        secs: 1200,
        seed: 1,
        file: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| -> &String {
            it.next().unwrap_or_else(|| {
                eprintln!("flag {what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--fault" => o.fault = Some(parse_fault(val("--fault"))),
            "--slaves" => o.slaves = val("--slaves").parse().unwrap_or_else(|_| usage()),
            "--secs" => o.secs = val("--secs").parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            other if !other.starts_with("--") && o.file.is_none() => {
                o.file = Some(other.to_owned());
            }
            _ => usage(),
        }
    }
    o
}

/// Renders a score series as a sparkline.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(1e-9, f64::max);
    values
        .iter()
        .map(|&v| BARS[((v / max * 7.0).round() as usize).min(7)])
        .collect()
}

fn cmd_demo(o: Opts) {
    let fault = o.fault.unwrap_or(FaultKind::Hadoop1036);
    let cfg = CampaignConfig {
        slaves: o.slaves,
        run_secs: o.secs,
        injection_at: o.secs / 4,
        fault_node: o.slaves / 2,
        base_seed: o.seed,
        consecutive: 2,
        ..CampaignConfig::smoke()
    };
    println!("training workload model ({} nodes, {} s fault-free)...", cfg.slaves, cfg.training_secs);
    let model = experiments::train_model(&cfg);
    println!(
        "injecting {fault} on node {} at t={} s; monitoring {} s...\n",
        cfg.fault_node, cfg.injection_at, cfg.run_secs
    );
    let tr = experiments::run_once(&cfg, &model, Some(fault), cfg.base_seed + 42);

    println!("black-box L1 distance per node (one column per {}-s window):", cfg.window);
    for node in 0..cfg.slaves {
        let series: Vec<f64> = tr.bb.scores.iter().map(|row| row[node]).collect();
        let alarms = tr.bb.alarms.iter().filter(|row| row[node]).count();
        println!(
            "  node {node:>2} {} {}{}",
            sparkline(&series),
            if node == cfg.fault_node { "<- culprit" } else { "" },
            if alarms > 0 {
                format!(" [{alarms} alarm windows]")
            } else {
                String::new()
            }
        );
    }
    println!("\nwhite-box critical-k per node:");
    for node in 0..cfg.slaves {
        let series: Vec<f64> = tr
            .wb
            .scores
            .iter()
            .map(|row| if row[node].is_finite() { row[node] } else { 20.0 })
            .collect();
        let alarms = tr.wb.alarms.iter().filter(|row| row[node]).count();
        println!(
            "  node {node:>2} {} {}{}",
            sparkline(&series),
            if node == cfg.fault_node { "<- culprit" } else { "" },
            if alarms > 0 {
                format!(" [{alarms} alarm windows]")
            } else {
                String::new()
            }
        );
    }
    let r = experiments::score_run(&tr, fault);
    println!(
        "\nverdict: balanced accuracy bb {:.1}% / wb {:.1}% / combined {:.1}%;  latency {}",
        r.ba_black_box,
        r.ba_white_box,
        r.ba_combined,
        r.lat_combined
            .map(|s| format!("{s} s"))
            .unwrap_or_else(|| "not detected".into())
    );
}

fn cmd_dump_config(o: Opts) {
    let cfg = CampaignConfig {
        slaves: o.slaves,
        ..CampaignConfig::smoke()
    };
    let model = experiments::train_model(&cfg);
    let builder = AsdfBuilder::new(AsdfOptions::default()).with_model(model);
    print!("{}", builder.config(o.slaves).render());
}

fn cmd_run_config(o: Opts) {
    let path = o.file.clone().unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let config: Config = text.parse().unwrap_or_else(|e| {
        eprintln!("config error: {e}");
        std::process::exit(1);
    });
    let faults = o
        .fault
        .map(|kind| {
            vec![FaultSpec {
                node: o.slaves / 2,
                kind,
                start_at: o.secs / 4,
            }]
        })
        .unwrap_or_default();
    let handle = ClusterHandle::new(Cluster::new(ClusterConfig::new(o.slaves, o.seed), faults));
    let mut registry = ModuleRegistry::new();
    asdf_modules::register_all(&mut registry, handle);
    let dag = Dag::build(&registry, &config).unwrap_or_else(|e| {
        eprintln!("DAG error: {e}");
        std::process::exit(1);
    });

    // Tap every print sink so its rendered lines reach stdout.
    let sink_ids: Vec<String> = config
        .instances()
        .iter()
        .filter(|i| i.module_type == "print")
        .map(|i| i.id.clone())
        .collect();
    let mut engine = TickEngine::new(dag);
    let taps: Vec<_> = sink_ids
        .iter()
        .filter_map(|id| engine.tap(id).map(|t| (id.clone(), t)))
        .collect();
    eprintln!("running `{path}` for {} s over {} simulated nodes...", o.secs, o.slaves);
    if let Err(e) = engine.run_for(TickDuration::from_secs(o.secs)) {
        eprintln!("runtime error: {e}");
        std::process::exit(1);
    }
    for (id, tap) in taps {
        for env in tap.drain() {
            if let Some(line) = env.sample.value.as_text() {
                println!("{id}: {line}");
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let opts = parse_opts(&args[1..]);
    match cmd.as_str() {
        "demo" => cmd_demo(opts),
        "dump-config" => cmd_dump_config(opts),
        "run-config" => cmd_run_config(opts),
        _ => usage(),
    }
}
