//! `asdf` — the operator CLI of the reproduction.
//!
//! Subcommands:
//!
//! * `demo [--fault NAME] [--slaves N] [--secs S] [--seed X]` — train,
//!   inject, fingerpoint; prints the per-window score timeline and the
//!   alarm verdicts for every node.
//! * `dump-config [--slaves N]` — print the generated fingerpointing
//!   pipeline in the paper's configuration dialect (ready to edit).
//! * `run-config <FILE> [--slaves N] [--secs S] [--fault NAME]` — execute
//!   a user-supplied configuration file against a simulated cluster and
//!   print everything the `print` sinks render.
//! * `fig7` / `fig6` / `ablate` — run the corresponding evaluation
//!   campaign at smoke scale (overridable with the campaign flags below).
//!   With `--trace-out PATH`, every module run, RPC poll, and campaign job
//!   is captured as a span and written as Chrome `trace_event` JSON —
//!   loadable in `chrome://tracing` or Perfetto. Each campaign subcommand
//!   ends with the instrumentation summary table on stderr.
//! * `serve [--tenants N] [--flood F] [--slaves N] [--secs S] [--seed X]
//!   [--tick-ms MS] [--speed F] [--queue-cap N] [--window W]
//!   [--threshold T] [--k K] [--batch-size B]` — the long-lived
//!   multi-tenant diagnosis daemon: trains a workload model, then serves
//!   `N` monitored clusters streaming collector frames concurrently
//!   (`F` of them flooding at max rate) until every tenant finishes its
//!   `--secs` collection steps; prints the per-tenant soak report
//!   (alarms, shed frames, scheduler-lag watermark).
//! * `perfwatch [--history PATH] [--report PATH] [--json PATH]
//!   [--permutations N] [--pvalue P] [--min-segment N] [--no-dogfood]` —
//!   the dogfooded perf-regression watchdog: loads the BENCH history
//!   (default `BENCH_history.jsonl`), runs E-Divisive change-point
//!   detection per metric, cross-checks with the peer-comparison DAG
//!   replay, and prints a markdown report (optionally written to
//!   `--report` and, as JSON, to `--json`). Advisory: always exits 0
//!   unless the history itself is unreadable.
//!
//! Campaign flags: `--slaves N --secs S --seed X --runs R --window W
//! --threshold T --k K --threads N --engine-threads N --batch-size B
//! --workload gridmix|trace:PATH --metric-rank --trace-out PATH`.
//! `--threads` fans independent runs across campaign workers;
//! `--engine-threads` shards each tick *within* a run across engine
//! workers; `--batch-size` sets how many envelopes accumulate per edge
//! before a lane hand-off (results are identical at any setting of any of
//! the three). `--workload trace:PATH` replays a cluster-trace CSV (see
//! `hadoop_sim::trace` for the schema) instead of synthesizing GridMix;
//! `--metric-rank` adds the Orion+-style per-metric deviation ranking
//! stage.
//!
//! Fault names: CPUHog, DiskHog, HADOOP-1036, HADOOP-1152, HADOOP-2080,
//! PacketLoss, Straggler, MemLeak, FlakyLink, GrayFailure.

use asdf::experiments::{self, CampaignConfig};
use asdf::pipeline::{AsdfBuilder, AsdfOptions};
use asdf_core::config::Config;
use asdf_core::dag::Dag;
use asdf_core::engine::TickEngine;
use asdf_core::registry::ModuleRegistry;
use asdf_core::time::TickDuration;
use asdf_rpc::daemons::ClusterHandle;
use hadoop_sim::cluster::{Cluster, ClusterConfig};
use hadoop_sim::faults::{FaultKind, FaultSpec};

fn usage() -> ! {
    eprintln!(
        "usage: asdf <demo|dump-config|run-config|fig7|fig6|ablate|serve> [options]\n\
         \n\
         asdf demo        [--fault NAME] [--slaves N] [--secs S] [--seed X]\n\
         asdf dump-config [--slaves N]\n\
         asdf run-config FILE [--slaves N] [--secs S] [--fault NAME] [--seed X]\n\
         asdf fig7|fig6|ablate [--slaves N] [--secs S] [--seed X] [--runs R]\n\
         \x20                     [--window W] [--threshold T] [--k K] [--threads N]\n\
         \x20                     [--engine-threads N] [--batch-size B] [--trace-out PATH]\n\
         \x20                     [--workload gridmix|trace:PATH] [--metric-rank]\n\
         \x20                     [--sim-shards N] [--racks R]\n\
         asdf serve       [--tenants N] [--flood F] [--slaves N] [--secs S]\n\
         \x20                [--seed X] [--tick-ms MS] [--speed F] [--queue-cap N]\n\
         \x20                [--window W] [--threshold T] [--k K] [--batch-size B]\n\
         asdf perfwatch   [--history PATH] [--report PATH] [--json PATH]\n\
         \x20                [--permutations N] [--pvalue P] [--min-segment N]\n\
         \x20                [--seed X] [--no-dogfood]\n\
         \n\
         campaign subcommands default to smoke scale; --trace-out writes a\n\
         Chrome trace_event JSON (chrome://tracing / Perfetto); perfwatch\n\
         analyzes BENCH_history.jsonl for perf regressions (advisory);\n\
         --workload trace:PATH replays a cluster-trace CSV instead of GridMix;\n\
         --sim-shards parallelizes each simulated cluster's tick loop and\n\
         --racks tree-reduces metric ranking per rack (both bit-identical)\n\
         \n\
         faults: CPUHog DiskHog HADOOP-1036 HADOOP-1152 HADOOP-2080 PacketLoss\n\
         \x20       Straggler MemLeak FlakyLink GrayFailure"
    );
    std::process::exit(2);
}

fn parse_fault(name: &str) -> FaultKind {
    FaultKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown fault `{name}`");
            usage()
        })
}

struct Opts {
    fault: Option<FaultKind>,
    slaves: Option<usize>,
    secs: Option<u64>,
    seed: u64,
    file: Option<String>,
    runs: Option<usize>,
    window: Option<usize>,
    threshold: Option<f64>,
    k: Option<f64>,
    threads: usize,
    engine_threads: usize,
    batch_size: Option<usize>,
    workload: Option<String>,
    metric_rank: bool,
    sim_shards: usize,
    racks: usize,
    trace_out: Option<String>,
    history: Option<String>,
    report_out: Option<String>,
    json_out: Option<String>,
    permutations: Option<usize>,
    pvalue: Option<f64>,
    min_segment: Option<usize>,
    no_dogfood: bool,
    tenants: usize,
    flood: usize,
    tick_ms: u64,
    speed: f64,
    queue_cap: Option<usize>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        fault: None,
        slaves: None,
        secs: None,
        seed: 1,
        file: None,
        runs: None,
        window: None,
        threshold: None,
        k: None,
        threads: 0,
        engine_threads: 1,
        batch_size: None,
        workload: None,
        metric_rank: false,
        sim_shards: 1,
        racks: 0,
        trace_out: None,
        history: None,
        report_out: None,
        json_out: None,
        permutations: None,
        pvalue: None,
        min_segment: None,
        no_dogfood: false,
        tenants: 4,
        flood: 0,
        tick_ms: 1000,
        speed: 1.0,
        queue_cap: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| -> &String {
            it.next().unwrap_or_else(|| {
                eprintln!("flag {what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--fault" => o.fault = Some(parse_fault(val("--fault"))),
            "--slaves" => o.slaves = Some(val("--slaves").parse().unwrap_or_else(|_| usage())),
            "--secs" => o.secs = Some(val("--secs").parse().unwrap_or_else(|_| usage())),
            "--seed" => o.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--runs" => o.runs = Some(val("--runs").parse().unwrap_or_else(|_| usage())),
            "--window" => o.window = Some(val("--window").parse().unwrap_or_else(|_| usage())),
            "--threshold" => {
                o.threshold = Some(val("--threshold").parse().unwrap_or_else(|_| usage()));
            }
            "--k" => o.k = Some(val("--k").parse().unwrap_or_else(|_| usage())),
            "--threads" => o.threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--engine-threads" => {
                o.engine_threads = val("--engine-threads").parse().unwrap_or_else(|_| usage());
            }
            "--batch-size" => {
                o.batch_size = Some(val("--batch-size").parse().unwrap_or_else(|_| usage()));
            }
            "--workload" => o.workload = Some(val("--workload").clone()),
            "--metric-rank" => o.metric_rank = true,
            "--sim-shards" => {
                o.sim_shards = val("--sim-shards").parse().unwrap_or_else(|_| usage());
            }
            "--racks" => o.racks = val("--racks").parse().unwrap_or_else(|_| usage()),
            "--trace-out" => o.trace_out = Some(val("--trace-out").clone()),
            "--history" => o.history = Some(val("--history").clone()),
            "--report" => o.report_out = Some(val("--report").clone()),
            "--json" => o.json_out = Some(val("--json").clone()),
            "--permutations" => {
                o.permutations = Some(val("--permutations").parse().unwrap_or_else(|_| usage()));
            }
            "--pvalue" => o.pvalue = Some(val("--pvalue").parse().unwrap_or_else(|_| usage())),
            "--min-segment" => {
                o.min_segment = Some(val("--min-segment").parse().unwrap_or_else(|_| usage()));
            }
            "--no-dogfood" => o.no_dogfood = true,
            "--tenants" => o.tenants = val("--tenants").parse().unwrap_or_else(|_| usage()),
            "--flood" => o.flood = val("--flood").parse().unwrap_or_else(|_| usage()),
            "--tick-ms" => o.tick_ms = val("--tick-ms").parse().unwrap_or_else(|_| usage()),
            "--speed" => o.speed = val("--speed").parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => {
                o.queue_cap = Some(val("--queue-cap").parse().unwrap_or_else(|_| usage()));
            }
            other if !other.starts_with("--") && o.file.is_none() => {
                o.file = Some(other.to_owned());
            }
            _ => usage(),
        }
    }
    o
}

impl Opts {
    /// The campaign configuration for the `fig7`/`fig6`/`ablate`
    /// subcommands: smoke scale by default (this is an interactive CLI,
    /// not the harness), with every knob overridable.
    fn campaign(&self) -> CampaignConfig {
        let mut cfg = CampaignConfig::smoke();
        cfg.base_seed = self.seed;
        cfg.threads = self.threads;
        cfg.engine_threads = self.engine_threads;
        cfg.sim_shards = self.sim_shards;
        cfg.racks = self.racks;
        if let Some(b) = self.batch_size {
            cfg.batch_size = b;
        }
        if let Some(n) = self.slaves {
            cfg.slaves = n;
        }
        if let Some(s) = self.secs {
            cfg.run_secs = s;
        }
        if let Some(r) = self.runs {
            cfg.fault_runs = r;
            cfg.fault_free_runs = r;
        }
        if let Some(w) = self.window {
            cfg.window = w;
        }
        if let Some(t) = self.threshold {
            cfg.bb_threshold = t;
        }
        if let Some(k) = self.k {
            cfg.wb_k = k;
        }
        cfg.workload = self.parse_workload();
        cfg.metric_rank = self.metric_rank;
        // Keep the fault node and injection point inside the run.
        cfg.fault_node = cfg.fault_node.min(cfg.slaves.saturating_sub(1));
        cfg.injection_at = cfg.injection_at.min(cfg.run_secs / 3);
        cfg
    }

    /// Resolves `--workload` (`gridmix`, the default, or `trace:PATH`).
    fn parse_workload(&self) -> experiments::Workload {
        match self.workload.as_deref() {
            None | Some("gridmix") => experiments::Workload::GridMix,
            Some(spec) => match spec.strip_prefix("trace:") {
                Some(path) => {
                    let trace =
                        hadoop_sim::Trace::load(std::path::Path::new(path)).unwrap_or_else(|e| {
                            eprintln!("{e}");
                            std::process::exit(1);
                        });
                    experiments::Workload::Trace(std::sync::Arc::new(trace))
                }
                None => {
                    eprintln!("unknown workload `{spec}` (expected gridmix or trace:PATH)");
                    usage()
                }
            },
        }
    }
}

/// Renders a score series as a sparkline.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(1e-9, f64::max);
    values
        .iter()
        .map(|&v| BARS[((v / max * 7.0).round() as usize).min(7)])
        .collect()
}

fn cmd_demo(o: Opts) {
    let fault = o.fault.unwrap_or(FaultKind::Hadoop1036);
    let slaves = o.slaves.unwrap_or(10);
    let secs = o.secs.unwrap_or(1200);
    let cfg = CampaignConfig {
        slaves,
        run_secs: secs,
        injection_at: secs / 4,
        fault_node: slaves / 2,
        base_seed: o.seed,
        consecutive: 2,
        ..CampaignConfig::smoke()
    };
    println!(
        "training workload model ({} nodes, {} s fault-free)...",
        cfg.slaves, cfg.training_secs
    );
    let model = experiments::train_model(&cfg);
    println!(
        "injecting {fault} on node {} at t={} s; monitoring {} s...\n",
        cfg.fault_node, cfg.injection_at, cfg.run_secs
    );
    let tr = experiments::run_once(&cfg, &model, Some(fault), cfg.base_seed + 42);

    println!(
        "black-box L1 distance per node (one column per {}-s window):",
        cfg.window
    );
    for node in 0..cfg.slaves {
        let series: Vec<f64> = tr.bb.scores.iter().map(|row| row[node]).collect();
        let alarms = tr.bb.alarms.iter().filter(|row| row[node]).count();
        println!(
            "  node {node:>2} {} {}{}",
            sparkline(&series),
            if node == cfg.fault_node {
                "<- culprit"
            } else {
                ""
            },
            if alarms > 0 {
                format!(" [{alarms} alarm windows]")
            } else {
                String::new()
            }
        );
    }
    println!("\nwhite-box critical-k per node:");
    for node in 0..cfg.slaves {
        let series: Vec<f64> = tr
            .wb
            .scores
            .iter()
            .map(|row| {
                if row[node].is_finite() {
                    row[node]
                } else {
                    20.0
                }
            })
            .collect();
        let alarms = tr.wb.alarms.iter().filter(|row| row[node]).count();
        println!(
            "  node {node:>2} {} {}{}",
            sparkline(&series),
            if node == cfg.fault_node {
                "<- culprit"
            } else {
                ""
            },
            if alarms > 0 {
                format!(" [{alarms} alarm windows]")
            } else {
                String::new()
            }
        );
    }
    let r = experiments::score_run(&tr, fault);
    println!(
        "\nverdict: balanced accuracy bb {:.1}% / wb {:.1}% / combined {:.1}%;  latency {}",
        r.ba_black_box,
        r.ba_white_box,
        r.ba_combined,
        r.lat_combined
            .map(|s| format!("{s} s"))
            .unwrap_or_else(|| "not detected".into())
    );
}

fn cmd_dump_config(o: Opts) {
    let slaves = o.slaves.unwrap_or(10);
    let cfg = CampaignConfig {
        slaves,
        ..CampaignConfig::smoke()
    };
    let model = experiments::train_model(&cfg);
    let builder = AsdfBuilder::new(AsdfOptions::default()).with_model(model);
    print!("{}", builder.config(slaves).render());
}

fn cmd_run_config(o: Opts) {
    let path = o.file.clone().unwrap_or_else(|| usage());
    let slaves = o.slaves.unwrap_or(10);
    let secs = o.secs.unwrap_or(1200);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let config: Config = text.parse().unwrap_or_else(|e| {
        eprintln!("config error: {e}");
        std::process::exit(1);
    });
    let faults = o
        .fault
        .map(|kind| {
            vec![FaultSpec {
                node: slaves / 2,
                kind,
                start_at: secs / 4,
            }]
        })
        .unwrap_or_default();
    let handle = ClusterHandle::new(Cluster::new(ClusterConfig::new(slaves, o.seed), faults));
    let mut registry = ModuleRegistry::new();
    asdf_modules::register_all(&mut registry, handle);
    let dag = Dag::build(&registry, &config).unwrap_or_else(|e| {
        eprintln!("DAG error: {e}");
        std::process::exit(1);
    });

    // Tap every print sink so its rendered lines reach stdout.
    let sink_ids: Vec<String> = config
        .instances()
        .iter()
        .filter(|i| i.module_type == "print")
        .map(|i| i.id.clone())
        .collect();
    let mut engine = TickEngine::new(dag);
    let taps: Vec<_> = sink_ids
        .iter()
        .filter_map(|id| engine.tap(id).map(|t| (id.clone(), t)))
        .collect();
    eprintln!("running `{path}` for {secs} s over {slaves} simulated nodes...");
    if let Err(e) = engine.run_for(TickDuration::from_secs(secs)) {
        eprintln!("runtime error: {e}");
        std::process::exit(1);
    }
    let mut buf = Vec::new();
    for (id, tap) in taps {
        buf.clear();
        tap.drain_into(&mut buf);
        for env in &buf {
            if let Some(line) = env.sample.value.as_text() {
                println!("{id}: {line}");
            }
        }
    }
}

fn cmd_fig7(cfg: &CampaignConfig) {
    eprintln!(
        "[fig7] training on {} nodes x {} s ({} workload), then {} faults x {} run(s) of {} s on {} worker(s) ...",
        cfg.slaves,
        cfg.training_secs,
        cfg.workload.name(),
        FaultKind::ALL.len(),
        cfg.fault_runs,
        cfg.run_secs,
        asdf::campaign::resolve_threads(cfg.threads)
    );
    let model = experiments::train_model(cfg);
    let rows = experiments::fig7(cfg, &model);
    println!("{}", asdf::report::render_fig7(&rows));
}

fn cmd_fig6(cfg: &CampaignConfig) {
    eprintln!(
        "[fig6] training on {} nodes x {} s, then {} fault-free run(s) of {} s ...",
        cfg.slaves, cfg.training_secs, cfg.fault_free_runs, cfg.run_secs
    );
    let model = experiments::train_model(cfg);
    let thresholds: Vec<f64> = (0..=14).map(|i| i as f64 * 5.0).collect();
    println!(
        "{}",
        asdf::report::render_sweep(
            "Figure 6(a): black-box false-positive rate vs L1 threshold",
            "threshold",
            &experiments::fig6a(cfg, &model, &thresholds)
        )
    );
    let ks: Vec<f64> = (0..=10).map(|i| i as f64 * 0.5).collect();
    println!(
        "{}",
        asdf::report::render_sweep(
            "Figure 6(b): white-box false-positive rate vs k",
            "k",
            &experiments::fig6b(cfg, &model, &ks)
        )
    );
}

fn cmd_ablate(cfg: &CampaignConfig) {
    use asdf::experiments::AblationKnob;
    let fault = FaultKind::Hadoop1036;
    eprintln!(
        "[ablate] {} nodes, {} s runs, fault {fault}; sweeping window / consecutive ...",
        cfg.slaves, cfg.run_secs
    );
    for (knob, values) in [
        (AblationKnob::Window, &[30.0, 60.0, 120.0][..]),
        (AblationKnob::Consecutive, &[1.0, 2.0, 3.0][..]),
    ] {
        println!("=== {} ===", knob.name());
        for r in experiments::ablate(cfg, knob, values, fault) {
            let lat = r
                .latency
                .map(|s| format!("{s}s"))
                .unwrap_or_else(|| "--".to_owned());
            println!(
                "{:>12} | BA {:>5.1}% | latency {:>6} | FP {:>5.2}%",
                r.value, r.ba_combined, lat, r.fp_rate
            );
        }
    }
}

fn cmd_serve(o: Opts) {
    use asdf::serve::{ServeDaemon, ServeOptions, TenantSpec};
    use asdf_rpc::wire::Handshake;
    use std::time::Duration;

    let slaves = o.slaves.unwrap_or(4);
    let steps = o.secs.unwrap_or(240);
    let flood = o.flood.min(o.tenants);
    let window = o.window.unwrap_or(60);
    let train_cfg = CampaignConfig {
        slaves,
        base_seed: o.seed,
        ..CampaignConfig::smoke()
    };
    eprintln!(
        "[serve] training workload model ({} nodes x {} s fault-free)...",
        train_cfg.slaves, train_cfg.training_secs
    );
    let model = experiments::train_model(&train_cfg);
    let opts = ServeOptions {
        slaves,
        wall_per_tick: Duration::from_millis(o.tick_ms),
        speed: o.speed,
        window,
        slide: window,
        threshold: o.threshold.unwrap_or(60.0),
        wb_k: o.k.unwrap_or(3.0),
        batch_size: o.batch_size.unwrap_or(64),
        ..ServeOptions::default()
    };
    let opts = match o.queue_cap {
        Some(cap) => ServeOptions {
            queue_capacity: cap,
            ..opts
        },
        None => opts,
    };
    let mut daemon = ServeDaemon::new(model, opts);
    eprintln!(
        "[serve] serving {} tenant(s) ({flood} flooding) x {steps} step(s) at {}x pacing, \
         {} ms/tick",
        o.tenants, o.speed, o.tick_ms
    );
    let mut names = Vec::new();
    for i in 0..o.tenants {
        let name = format!("tenant{i:02}");
        let seed = o.seed + i as u64;
        let spec = if i < flood {
            TenantSpec::flooding(seed, steps)
        } else {
            TenantSpec::paced(seed, steps)
        };
        if let Err(e) = daemon.join_tenant(Handshake::new(&name).encode(), spec) {
            eprintln!("cannot join {name}: {e}");
            std::process::exit(1);
        }
        names.push(name);
    }
    for name in &names {
        if !daemon.wait_idle(name, Duration::from_secs(steps * o.tick_ms / 500 + 60)) {
            eprintln!("warning: [serve] tenant {name} did not go idle; flushing anyway");
        }
    }
    let reports = daemon.shutdown().unwrap_or_else(|e| {
        eprintln!("serve shutdown failed: {e}");
        std::process::exit(1);
    });
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>6} {:>10} {:>9}",
        "tenant", "bb", "wb_tt", "wb_st", "shed", "delivered", "lag_max"
    );
    for r in &reports {
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>6} {:>10} {:>9}",
            r.tenant,
            r.bb_alarms.len(),
            r.wb_tt_alarms.len(),
            r.wb_st_alarms.len(),
            r.shed,
            r.delivered,
            r.lag_watermark
        );
    }
}

fn cmd_perfwatch(o: Opts) {
    use asdf::perfwatch::{self, AnalyzeOptions};
    let path = o.history.as_deref().unwrap_or("BENCH_history.jsonl");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut opts = AnalyzeOptions::default();
    if let Some(p) = o.permutations {
        opts.detector.permutations = p;
    }
    if let Some(p) = o.pvalue {
        opts.detector.p_threshold = p;
    }
    if let Some(m) = o.min_segment {
        opts.detector.min_segment = m;
    }
    opts.detector.seed = o.seed;
    if o.no_dogfood {
        opts.dogfood = None;
    }
    let report = perfwatch::analyze(&text, &opts).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    let markdown = perfwatch::report::render_markdown(&report);
    match o.report_out.as_deref() {
        Some(out) => {
            if let Err(e) = std::fs::write(out, &markdown) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            }
            eprintln!("report -> {out}");
        }
        None => print!("{markdown}"),
    }
    if let Some(out) = o.json_out.as_deref() {
        if let Err(e) = std::fs::write(out, perfwatch::report::render_json(&report)) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("json -> {out}");
    }
    // Advisory by design: findings are evidence for humans, not a gate,
    // so a clean run exits 0 whatever the detectors concluded.
}

/// Runs a campaign subcommand under the observability exporters: optional
/// Chrome-trace capture around `body`, then the instrumentation summary
/// table on stderr.
fn with_exporters(trace_out: Option<&str>, body: impl FnOnce()) {
    if trace_out.is_some() {
        asdf_obs::start_tracing(asdf_obs::DEFAULT_TRACE_CAPACITY);
    }
    body();
    if let Some(path) = trace_out {
        let (events, dropped) = asdf_obs::stop_tracing();
        let text = asdf_obs::export::render_chrome_trace(&events);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        match asdf_obs::export::validate_chrome_trace(&text) {
            Ok(check) => eprintln!(
                "trace: {} events / {} threads / {} span names -> {path}{}",
                check.n_events,
                check.n_threads,
                check.n_names,
                if dropped > 0 {
                    format!(" ({dropped} dropped at capacity)")
                } else {
                    String::new()
                }
            ),
            Err(e) => {
                eprintln!("internal error: exported trace failed validation: {e}");
                std::process::exit(1);
            }
        }
    }
    eprint!(
        "{}",
        asdf_obs::export::render_summary(&asdf_obs::registry().snapshot())
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let opts = parse_opts(&args[1..]);
    match cmd.as_str() {
        "demo" => cmd_demo(opts),
        "dump-config" => cmd_dump_config(opts),
        "run-config" => cmd_run_config(opts),
        "serve" => cmd_serve(opts),
        "perfwatch" => cmd_perfwatch(opts),
        "fig7" | "fig6" | "ablate" => {
            let cfg = opts.campaign();
            let trace_out = opts.trace_out.clone();
            let run: Box<dyn FnOnce()> = match cmd.as_str() {
                "fig7" => Box::new(move || cmd_fig7(&cfg)),
                "fig6" => Box::new(move || cmd_fig6(&cfg)),
                _ => Box::new(move || cmd_ablate(&cfg)),
            };
            with_exporters(trace_out.as_deref(), run);
        }
        _ => usage(),
    }
}
