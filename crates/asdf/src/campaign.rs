//! Bounded worker pool for fanning out independent campaign runs.
//!
//! Every experiment in [`crate::experiments`] decomposes into runs that are
//! fully independent: each builds its own simulated cluster from its own
//! seed, so runs share no mutable state. [`run_indexed`] executes such a job
//! list on scoped threads and reassembles the results **in job order**, so a
//! campaign produces byte-identical output no matter how many workers it
//! uses — including one, where it degrades to a plain serial loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolves a requested worker count: `0` means "ask the OS", anything else
/// is taken literally. Falls back to 1 when parallelism cannot be queried.
pub fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0..jobs)` across at most `threads` scoped workers and returns the
/// results in index order.
///
/// `threads == 0` resolves to the machine's available parallelism. With an
/// effective worker count of one (or one job) the closure runs on the
/// calling thread with no pool at all, so single-threaded behaviour is
/// *literally* the serial loop, not an emulation of it.
///
/// Work is pulled from a shared atomic counter, so long and short jobs
/// balance across workers; ordering is restored on collection, so the
/// schedule never leaks into the results.
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins all workers first).
pub fn run_indexed<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(jobs);
    if workers <= 1 {
        return (0..jobs).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (i, value) in rx {
            slots[i] = Some(value);
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every job index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_zero_to_a_positive_count() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn preserves_job_order_at_any_width() {
        let jobs = 37;
        let expected: Vec<usize> = (0..jobs).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = run_indexed(jobs, threads, |i| i * i);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_single_job_lists() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        assert_eq!(run_indexed(2, 16, |i| i), vec![0, 1]);
    }
}
