//! Bounded worker pool for fanning out independent campaign runs.
//!
//! Every experiment in [`crate::experiments`] decomposes into runs that are
//! fully independent: each builds its own simulated cluster from its own
//! seed, so runs share no mutable state. [`run_indexed`] executes such a job
//! list on scoped threads and reassembles the results **in job order**, so a
//! campaign produces byte-identical output no matter how many workers it
//! uses — including one, where it degrades to a plain serial loop.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use asdf_obs::SpanHandle;

/// Registry handles for pool telemetry, resolved once per process.
struct PoolObs {
    jobs_total: Arc<asdf_obs::Counter>,
    job_ns: Arc<asdf_obs::Histogram>,
    workers: Arc<asdf_obs::Gauge>,
    /// Percentage of worker wall-time spent inside jobs over the last
    /// `run_indexed` call — near 100 means the pool kept every worker busy.
    utilization_pct: Arc<asdf_obs::Gauge>,
}

fn pool_obs() -> &'static PoolObs {
    static OBS: OnceLock<PoolObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = asdf_obs::registry();
        PoolObs {
            jobs_total: reg.counter("campaign.jobs_total"),
            job_ns: reg.histogram("campaign.job_ns"),
            workers: reg.gauge("campaign.workers"),
            utilization_pct: reg.gauge("campaign.worker_utilization_pct"),
        }
    })
}

/// Resolves a requested worker count: `0` means "ask the OS", anything else
/// is taken literally. Falls back to 1 when parallelism cannot be queried.
pub fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0..jobs)` across at most `threads` scoped workers and returns the
/// results in index order.
///
/// `threads == 0` resolves to the machine's available parallelism. With an
/// effective worker count of one (or one job) the closure runs on the
/// calling thread with no pool at all, so single-threaded behaviour is
/// *literally* the serial loop, not an emulation of it.
///
/// Work is pulled from a shared atomic counter, so long and short jobs
/// balance across workers; ordering is restored on collection, so the
/// schedule never leaks into the results.
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins all workers first).
pub fn run_indexed<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(jobs);
    let obs = pool_obs();
    obs.workers.set(workers as i64);
    // Runs one job under a per-job span (traceable, feeds campaign.job_ns)
    // and returns its busy time so the pool can report utilization.
    let timed_job = |i: usize| -> (T, u64) {
        let t0 = Instant::now();
        let value = {
            let span = SpanHandle::new("campaign", format!("job {i}"), obs.job_ns.clone());
            let _timer = span.enter();
            f(i)
        };
        obs.jobs_total.inc();
        (value, t0.elapsed().as_nanos() as u64)
    };
    let wall = Instant::now();
    if workers <= 1 {
        let mut busy_ns = 0u64;
        let out = (0..jobs)
            .map(|i| {
                let (value, ns) = timed_job(i);
                busy_ns += ns;
                value
            })
            .collect();
        record_utilization(obs, busy_ns, 1, wall.elapsed().as_nanos() as u64);
        return out;
    }

    let next = AtomicUsize::new(0);
    let busy_ns = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let busy_ns = &busy_ns;
            let timed_job = &timed_job;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let (value, ns) = timed_job(i);
                busy_ns.fetch_add(ns, Ordering::Relaxed);
                if tx.send((i, value)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, value) in rx {
            slots[i] = Some(value);
        }
    });
    record_utilization(
        obs,
        busy_ns.load(Ordering::Relaxed),
        workers,
        wall.elapsed().as_nanos() as u64,
    );

    slots
        .into_iter()
        .map(|slot| slot.expect("every job index produced a result"))
        .collect()
}

/// Publishes the pool's busy/wall ratio as a percentage gauge.
fn record_utilization(obs: &PoolObs, busy_ns: u64, workers: usize, wall_ns: u64) {
    let denom = (workers as u64).saturating_mul(wall_ns);
    if denom > 0 {
        let pct = (busy_ns as f64 / denom as f64 * 100.0).round() as i64;
        obs.utilization_pct.set(pct.clamp(0, 100));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_zero_to_a_positive_count() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn preserves_job_order_at_any_width() {
        let jobs = 37;
        let expected: Vec<usize> = (0..jobs).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = run_indexed(jobs, threads, |i| i * i);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_single_job_lists() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        assert_eq!(run_indexed(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn concurrent_workers_increment_counters_without_losing_updates() {
        // Only this test touches this counter name, so the total is exact:
        // 48 jobs × 100 increments each, racing across 8 workers.
        let counter = asdf_obs::registry().counter("test.campaign.concurrent_incs");
        let before = counter.get();
        run_indexed(48, 8, |i| {
            for _ in 0..100 {
                counter.inc();
            }
            i
        });
        assert_eq!(counter.get(), before + 48 * 100);
    }

    #[test]
    fn pool_telemetry_tracks_jobs_and_utilization() {
        let reg = asdf_obs::registry();
        let jobs_before = reg.counter("campaign.jobs_total").get();
        let timed_before = reg.histogram("campaign.job_ns").count();
        // Time every job span so the histogram-count assertion is exact.
        let was = asdf_obs::set_span_sample_period(1);
        run_indexed(12, 3, |i| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            i
        });
        asdf_obs::set_span_sample_period(was);
        // Counters are process-global; other tests may add, so use >=.
        assert!(reg.counter("campaign.jobs_total").get() >= jobs_before + 12);
        assert!(reg.histogram("campaign.job_ns").count() >= timed_before + 12);
        let util = reg.gauge("campaign.worker_utilization_pct").get();
        assert!((0..=100).contains(&util), "utilization {util}%");
    }
}
