//! Perfwatch report assembly and rendering (markdown + JSON).
//!
//! [`analyze`](crate::perfwatch::analyze) produces a [`PerfwatchReport`];
//! this module renders it for humans (`render_markdown`, what the CI job
//! uploads) and for machines (`render_json`). The watchdog is advisory:
//! the renderers never decide pass/fail, they rank evidence.

use std::fmt::Write as _;

use super::dogfood::DogfoodVerdict;
use super::edivisive::ChangePoint;

/// Change-point findings for one metric series.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFinding {
    /// Metric name.
    pub metric: String,
    /// Points in the series (records carrying the metric).
    pub n_points: usize,
    /// Significant change points, ordered by index.
    pub change_points: Vec<ChangePoint>,
}

impl MetricFinding {
    /// Largest absolute relative shift among this metric's change points
    /// (0 when quiet) — the ranking key.
    pub fn max_abs_shift_pct(&self) -> f64 {
        self.change_points
            .iter()
            .map(|cp| cp.shift_pct.abs())
            .fold(0.0, f64::max)
    }
}

/// How the two independent detectors relate on this history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Agreement {
    /// Neither detector found anything.
    BothQuiet,
    /// Both name exactly the same metrics.
    Agree(Vec<String>),
    /// The detectors name different metric sets.
    Disagree {
        /// Metrics with significant E-Divisive change points.
        edivisive: Vec<String>,
        /// Metrics the dogfood DAG fingerpointed.
        dogfood: Vec<String>,
    },
    /// The dogfood replay could not run (reason recorded on the report).
    DogfoodSkipped,
}

/// Everything one `asdf perfwatch` invocation concluded.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfwatchReport {
    /// History records analyzed.
    pub n_records: usize,
    /// Of which legacy schema-0 lines.
    pub n_schema0: usize,
    /// UTC timestamps of the first and last record.
    pub span_utc: (String, String),
    /// Per-metric change-point findings, metrics with the largest shifts
    /// first, quiet metrics alphabetical after them.
    pub findings: Vec<MetricFinding>,
    /// Dogfood verdicts (empty when the replay was skipped).
    pub dogfood_verdicts: Vec<DogfoodVerdict>,
    /// Why the dogfood replay was skipped, if it was.
    pub dogfood_skipped: Option<String>,
    /// Cross-check between the two detectors.
    pub agreement: Agreement,
}

impl PerfwatchReport {
    /// Metrics with at least one significant change point.
    pub fn shifted_metrics(&self) -> Vec<String> {
        self.findings
            .iter()
            .filter(|f| !f.change_points.is_empty())
            .map(|f| f.metric.clone())
            .collect()
    }

    /// Metrics the dogfood DAG fingerpointed.
    pub fn dogfood_flagged(&self) -> Vec<String> {
        self.dogfood_verdicts
            .iter()
            .filter(|v| v.flagged())
            .map(|v| v.metric.clone())
            .collect()
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders the report as markdown — the artifact the advisory CI job
/// uploads and the default `asdf perfwatch` output.
pub fn render_markdown(r: &PerfwatchReport) -> String {
    let mut out = String::new();
    out.push_str("# perfwatch — BENCH history change-point report\n\n");
    let _ = writeln!(
        out,
        "{} record(s) ({} legacy schema-0), {} .. {}\n",
        r.n_records, r.n_schema0, r.span_utc.0, r.span_utc.1
    );

    let shifted = r.shifted_metrics();
    if shifted.is_empty() {
        out.push_str("## E-Divisive: no significant change points\n\n");
    } else {
        let _ = writeln!(out, "## E-Divisive: {} metric(s) shifted\n", shifted.len());
        out.push_str("| metric | change @ record | shift | p | before → after |\n");
        out.push_str("|---|---|---|---|---|\n");
        for f in r.findings.iter().filter(|f| !f.change_points.is_empty()) {
            for cp in &f.change_points {
                let _ = writeln!(
                    out,
                    "| `{}` | {} | {:+.1}% | {:.3} | {:.4} → {:.4} |",
                    f.metric, cp.index, cp.shift_pct, cp.p_value, cp.before_mean, cp.after_mean
                );
            }
        }
        out.push('\n');
    }

    match &r.dogfood_skipped {
        Some(reason) => {
            let _ = writeln!(out, "## Dogfood DAG: skipped ({reason})\n");
        }
        None => {
            let flagged = r.dogfood_flagged();
            if flagged.is_empty() {
                out.push_str("## Dogfood DAG: no metric fingerpointed\n\n");
            } else {
                let _ = writeln!(
                    out,
                    "## Dogfood DAG: fingerpointed {}\n",
                    flagged
                        .iter()
                        .map(|m| format!("`{m}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            out.push_str("| metric | alarms/windows | first alarm @ | max L1 (thr) |\n");
            out.push_str("|---|---|---|---|\n");
            for v in &r.dogfood_verdicts {
                let _ = writeln!(
                    out,
                    "| `{}` | {}/{} | {} | {:.1} ({:.1}) |",
                    v.metric,
                    v.alarm_windows,
                    v.evaluations,
                    v.first_alarm_secs
                        .map_or_else(|| "-".to_owned(), |s| s.to_string()),
                    v.max_dist,
                    v.threshold
                );
            }
            out.push('\n');
        }
    }

    out.push_str("## Verdict: ");
    match &r.agreement {
        Agreement::BothQuiet => out.push_str("both detectors quiet — no regression evidence.\n"),
        Agreement::Agree(ms) => {
            let _ = writeln!(
                out,
                "detectors AGREE on {}.",
                ms.iter()
                    .map(|m| format!("`{m}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        Agreement::Disagree { edivisive, dogfood } => {
            let _ = writeln!(
                out,
                "detectors disagree — E-Divisive: [{}], dogfood: [{}]. Treat as weak evidence.",
                edivisive.join(", "),
                dogfood.join(", ")
            );
        }
        Agreement::DogfoodSkipped => {
            out.push_str("E-Divisive only (dogfood replay skipped).\n");
        }
    }
    out
}

/// Renders the report as a deterministic single-document JSON object.
pub fn render_json(r: &PerfwatchReport) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"n_records\":{},\"n_schema0\":{},\"first_utc\":\"",
        r.n_records, r.n_schema0
    );
    escape_json(&r.span_utc.0, &mut out);
    out.push_str("\",\"last_utc\":\"");
    escape_json(&r.span_utc.1, &mut out);
    out.push_str("\",\"metrics\":[");
    for (i, f) in r.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"metric\":\"");
        escape_json(&f.metric, &mut out);
        let _ = write!(out, "\",\"n_points\":{},\"change_points\":[", f.n_points);
        for (j, cp) in f.change_points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"index\":{},\"qhat\":{:.6},\"p_value\":{:.6},\"before_mean\":{},\"after_mean\":{},\"shift_pct\":{:.3}}}",
                cp.index, cp.qhat, cp.p_value, cp.before_mean, cp.after_mean, cp.shift_pct
            );
        }
        out.push_str("]}");
    }
    out.push_str("],\"dogfood\":{");
    match &r.dogfood_skipped {
        Some(reason) => {
            out.push_str("\"ran\":false,\"skipped\":\"");
            escape_json(reason, &mut out);
            out.push('"');
        }
        None => {
            out.push_str("\"ran\":true,\"verdicts\":[");
            for (i, v) in r.dogfood_verdicts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"metric\":\"");
                escape_json(&v.metric, &mut out);
                let _ = write!(
                    out,
                    "\",\"flagged\":{},\"alarm_windows\":{},\"evaluations\":{},\"first_alarm_secs\":{},\"max_dist\":{:.3},\"threshold\":{:.3}}}",
                    v.flagged(),
                    v.alarm_windows,
                    v.evaluations,
                    v.first_alarm_secs
                        .map_or_else(|| "null".to_owned(), |s| s.to_string()),
                    v.max_dist,
                    v.threshold
                );
            }
            out.push(']');
        }
    }
    out.push_str("},\"agreement\":");
    match &r.agreement {
        Agreement::BothQuiet => out.push_str("{\"kind\":\"both_quiet\"}"),
        Agreement::Agree(ms) => {
            out.push_str("{\"kind\":\"agree\",\"metrics\":[");
            for (i, m) in ms.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json(m, &mut out);
                out.push('"');
            }
            out.push_str("]}");
        }
        Agreement::Disagree { edivisive, dogfood } => {
            let list = |items: &[String], out: &mut String| {
                for (i, m) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json(m, out);
                    out.push('"');
                }
            };
            out.push_str("{\"kind\":\"disagree\",\"edivisive\":[");
            list(edivisive, &mut out);
            out.push_str("],\"dogfood\":[");
            list(dogfood, &mut out);
            out.push_str("]}");
        }
        Agreement::DogfoodSkipped => out.push_str("{\"kind\":\"dogfood_skipped\"}"),
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PerfwatchReport {
        PerfwatchReport {
            n_records: 12,
            n_schema0: 1,
            span_utc: ("2026-08-01T00:00:00Z".into(), "2026-08-08T00:00:00Z".into()),
            findings: vec![
                MetricFinding {
                    metric: "campaign_serial_secs".into(),
                    n_points: 12,
                    change_points: vec![ChangePoint {
                        index: 6,
                        qhat: 3.2,
                        p_value: 0.005,
                        before_mean: 0.5,
                        after_mean: 0.6,
                        shift_pct: 20.0,
                    }],
                },
                MetricFinding {
                    metric: "scan_speedup".into(),
                    n_points: 12,
                    change_points: vec![],
                },
            ],
            dogfood_verdicts: vec![DogfoodVerdict {
                metric: "campaign_serial_secs".into(),
                evaluations: 4,
                alarm_windows: 2,
                first_alarm_secs: Some(9),
                max_dist: 14.0,
                threshold: 8.0,
            }],
            dogfood_skipped: None,
            agreement: Agreement::Agree(vec!["campaign_serial_secs".into()]),
        }
    }

    #[test]
    fn markdown_names_the_shifted_metric_and_the_verdict() {
        let md = render_markdown(&sample_report());
        assert!(md.contains("`campaign_serial_secs`"));
        assert!(md.contains("+20.0%"));
        assert!(md.contains("detectors AGREE"));
        assert!(md.contains("2/4"));
    }

    #[test]
    fn json_is_parseable_and_carries_the_findings() {
        let text = render_json(&sample_report());
        let doc = asdf_obs::json::parse(&text).expect("report JSON parses");
        assert_eq!(doc.get("n_records").and_then(|v| v.as_f64()), Some(12.0));
        let metrics = doc.get("metrics").and_then(|v| v.as_array()).unwrap();
        assert_eq!(metrics.len(), 2);
        let cp = metrics[0]
            .get("change_points")
            .and_then(|v| v.as_array())
            .unwrap();
        assert_eq!(cp[0].get("index").and_then(|v| v.as_f64()), Some(6.0));
        assert_eq!(
            doc.get("agreement")
                .and_then(|a| a.get("kind"))
                .and_then(|v| v.as_str()),
            Some("agree")
        );
    }

    #[test]
    fn skipped_dogfood_renders_in_both_formats() {
        let mut r = sample_report();
        r.dogfood_verdicts.clear();
        r.dogfood_skipped = Some("only 2 records".into());
        r.agreement = Agreement::DogfoodSkipped;
        let md = render_markdown(&r);
        assert!(md.contains("skipped (only 2 records)"));
        let doc = asdf_obs::json::parse(&render_json(&r)).unwrap();
        let ran = doc.get("dogfood").and_then(|d| d.get("ran")).unwrap();
        assert!(format!("{ran:?}").contains("false"));
    }
}
