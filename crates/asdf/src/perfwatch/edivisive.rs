//! E-Divisive-mean change-point detection over a single metric series.
//!
//! The statistic is the `q̂(t)` of the energy-distance family used by
//! MongoDB's automated performance-testing pipeline ("Change Point
//! Detection in Software Performance Testing", Daly et al.): for a split
//! of the series `x[0..n]` at `t` into a left part of `m = t` points and a
//! right part of `k = n − t` points,
//!
//! ```text
//! q̂(t) = (m·k)/(m+k) · ( 2·cross/(m·k)
//!                        − 2·within_L/(m·(m−1))
//!                        − 2·within_R/(k·(k−1)) )
//! ```
//!
//! where `cross` sums `|x_i − x_j|` across the split and `within_L/R` sum
//! it inside each side. The split maximizing `q̂` is the change-point
//! candidate; its significance is assessed with a seeded permutation test
//! (does the observed maximum beat the maxima of shuffled copies?), and
//! detection recurses on the two sides until no segment yields a
//! significant split. Everything is deterministic for a fixed
//! [`DetectorConfig::seed`] and dependency-free; the all-`t` scan is
//! incremental, so one pass over the candidate splits costs `O(n²)` total
//! rather than `O(n³)`.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tuning for [`detect`]. The defaults mirror the common configuration of
/// the E-Divisive permutation test: 199 permutations at `p ≤ 0.05`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Shuffled replicas per permutation test.
    pub permutations: usize,
    /// Significance threshold on the permutation p-value.
    pub p_threshold: f64,
    /// Minimum points required on each side of a candidate split.
    pub min_segment: usize,
    /// RNG seed for the permutation test (detection is deterministic for a
    /// fixed seed).
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            permutations: 199,
            p_threshold: 0.05,
            min_segment: 4,
            seed: 0x5eed_a5df,
        }
    }
}

/// One significant change point in a series.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangePoint {
    /// Index of the first point of the *new* regime (the series changed
    /// between `index − 1` and `index`).
    pub index: usize,
    /// The `q̂` statistic at the split.
    pub qhat: f64,
    /// Permutation-test p-value of the split.
    pub p_value: f64,
    /// Mean of the segment before the split.
    pub before_mean: f64,
    /// Mean of the segment after the split.
    pub after_mean: f64,
    /// Relative shift `(after − before) / |before|` in percent (uses an
    /// epsilon floor when the before-mean is ~0).
    pub shift_pct: f64,
}

/// `q̂(t)` for every split `t` of `xs` (same length as `xs`; entries
/// outside the valid split range `min_side ≤ t ≤ n − min_side` are 0).
/// `min_side` is clamped to at least 2 so both within-side terms are
/// defined.
pub fn qhat_values(xs: &[f64], min_side: usize) -> Vec<f64> {
    let n = xs.len();
    let min_side = min_side.max(2);
    let mut q = vec![0.0; n];
    if n < 2 * min_side {
        return q;
    }
    // Running pairwise-distance sums for the split at `t`, updated as the
    // element x[t] moves from the right side to the left:
    //   cross    = Σ_{i<t, j≥t}  |x_i − x_j|
    //   within_l = Σ_{i<j<t}     |x_i − x_j|
    //   within_r = Σ_{t≤i<j}     |x_i − x_j|
    let mut cross = 0.0;
    let mut within_l = 0.0;
    let mut within_r = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            within_r += (xs[i] - xs[j]).abs();
        }
    }
    for t in 1..n {
        // Advance the split from t-1 to t: x[t-1] joins the left side.
        let moved = xs[t - 1];
        let mut row_left = 0.0;
        for &x in &xs[..t - 1] {
            row_left += (moved - x).abs();
        }
        let mut row_right = 0.0;
        for &x in &xs[t..] {
            row_right += (moved - x).abs();
        }
        cross += row_right - row_left;
        within_l += row_left;
        within_r -= row_right;
        if t < min_side || n - t < min_side {
            continue;
        }
        let (m, k) = (t as f64, (n - t) as f64);
        let term_cross = 2.0 * cross / (m * k);
        let term_l = 2.0 * within_l / (m * (m - 1.0));
        let term_r = 2.0 * within_r / (k * (k - 1.0));
        q[t] = (m * k / (m + k)) * (term_cross - term_l - term_r);
    }
    q
}

/// The best split of `xs`: `(t, q̂(t))`, preferring the lowest `t` on
/// ties. Returns `None` when no split satisfies the side minimum.
fn best_split(xs: &[f64], min_side: usize) -> Option<(usize, f64)> {
    qhat_values(xs, min_side)
        .iter()
        .enumerate()
        .filter(|(_, q)| **q > 0.0)
        .max_by(|(ia, qa), (ib, qb)| qa.partial_cmp(qb).expect("qhat is finite").then(ib.cmp(ia)))
        .map(|(t, &q)| (t, q))
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Permutation p-value of the observed maximum `q̂` on a segment: the
/// fraction of shuffled replicas whose own maximum matches or beats it
/// (with the standard +1 correction so the p-value is never 0).
fn permutation_p_value(xs: &[f64], observed: f64, cfg: &DetectorConfig, rng: &mut SmallRng) -> f64 {
    let mut beat = 0usize;
    let mut scratch = xs.to_vec();
    for _ in 0..cfg.permutations {
        scratch.shuffle(rng);
        let perm_max = best_split(&scratch, cfg.min_segment).map_or(0.0, |(_, q)| q);
        if perm_max >= observed {
            beat += 1;
        }
    }
    (beat + 1) as f64 / (cfg.permutations + 1) as f64
}

/// Hierarchical E-Divisive detection: finds the most significant split of
/// the whole series, then recurses into both sides, collecting every
/// split whose permutation p-value clears [`DetectorConfig::p_threshold`].
/// Change points come back ordered by index. A constant series (or one
/// whose fluctuations shuffled copies reproduce) yields none.
pub fn detect(xs: &[f64], cfg: &DetectorConfig) -> Vec<ChangePoint> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut found = Vec::new();
    // Explicit worklist of (offset, segment) keeps recursion depth flat
    // and the visit order (hence RNG stream) deterministic.
    let mut work = vec![(0usize, xs.to_vec())];
    while let Some((offset, seg)) = work.pop() {
        let Some((t, q)) = best_split(&seg, cfg.min_segment) else {
            continue;
        };
        let p = permutation_p_value(&seg, q, cfg, &mut rng);
        if p > cfg.p_threshold {
            continue;
        }
        let before = mean(&seg[..t]);
        let after = mean(&seg[t..]);
        let denom = before.abs().max(1e-12);
        found.push(ChangePoint {
            index: offset + t,
            qhat: q,
            p_value: p,
            before_mean: before,
            after_mean: after,
            shift_pct: (after - before) / denom * 100.0,
        });
        // Right side first so the pop order walks left-to-right.
        work.push((offset + t, seg[t..].to_vec()));
        work.push((offset, seg[..t].to_vec()));
    }
    found.sort_by_key(|cp| cp.index);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn noisy(base: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| base * (1.0 + 0.01 * rng.gen_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn step_change_is_found_at_the_right_index() {
        // 30 points near 1.0, then 30 points near 1.2: a 20% step at 30.
        let mut xs = noisy(1.0, 30, 7);
        xs.extend(noisy(1.2, 30, 8));
        let cps = detect(&xs, &DetectorConfig::default());
        assert_eq!(cps.len(), 1, "exactly one change point: {cps:?}");
        let cp = &cps[0];
        assert!(
            (28..=32).contains(&cp.index),
            "step at 30 localized, got {}",
            cp.index
        );
        assert!(cp.p_value <= 0.05);
        assert!(
            (cp.shift_pct - 20.0).abs() < 3.0,
            "≈20% shift, got {:.2}%",
            cp.shift_pct
        );
    }

    #[test]
    fn stationary_noise_yields_no_change_points() {
        let xs = noisy(5.0, 60, 21);
        assert_eq!(detect(&xs, &DetectorConfig::default()), vec![]);
        // Constant series: all pairwise distances are 0.
        let flat = vec![3.25; 40];
        assert_eq!(detect(&flat, &DetectorConfig::default()), vec![]);
    }

    #[test]
    fn two_steps_are_both_recovered() {
        let mut xs = noisy(1.0, 25, 1);
        xs.extend(noisy(1.5, 25, 2));
        xs.extend(noisy(0.8, 25, 3));
        let cps = detect(&xs, &DetectorConfig::default());
        assert_eq!(cps.len(), 2, "{cps:?}");
        assert!((23..=27).contains(&cps[0].index), "{cps:?}");
        assert!((48..=52).contains(&cps[1].index), "{cps:?}");
        assert!(cps[0].shift_pct > 0.0 && cps[1].shift_pct < 0.0);
    }

    #[test]
    fn detection_is_deterministic_for_a_fixed_seed() {
        let mut xs = noisy(2.0, 20, 4);
        xs.extend(noisy(2.6, 20, 5));
        let cfg = DetectorConfig::default();
        assert_eq!(detect(&xs, &cfg), detect(&xs, &cfg));
        // Short series (below 2·min_segment) never split.
        assert_eq!(detect(&xs[..6], &cfg), vec![]);
        assert_eq!(detect(&[], &cfg), vec![]);
    }

    #[test]
    fn qhat_peaks_at_the_true_split_on_a_clean_step() {
        let xs: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 1.0 }).collect();
        let q = qhat_values(&xs, 2);
        let argmax = q
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 20);
        // Outside the valid split band the statistic is zero.
        assert_eq!(q[0], 0.0);
        assert_eq!(q[1], 0.0);
        assert_eq!(q[39], 0.0);
    }
}
