//! The dogfood path: ASDF diagnosing ASDF.
//!
//! The BENCH time series is re-cast as the kind of input the paper's
//! framework was built for — each benchmark metric plays the role of one
//! *node* in a peer group, and a performance regression in one metric is
//! a fault localized by peer comparison, exactly like a culprit node in a
//! Hadoop cluster:
//!
//! ```text
//! perfseries(metric 0) ─ mavgvec ─ knn ─┐
//! perfseries(metric 1) ─ mavgvec ─ knn ─┤─ analysis_bb ─ alarms
//! perfseries(metric 2) ─ mavgvec ─ knn ─┘
//! ```
//!
//! Each metric's history is robustly normalized (median/MAD over a
//! leading baseline window, so all metrics share a scale regardless of
//! unit), shifted positive for `knn`'s `log(1+x)/σ` transform, and
//! replayed one sample per tick through the real module DAG built from
//! real config text. A 1-d k-means model fit on the pooled smoothed
//! values supplies the `knn` centroids, and `analysis_bb` flags any
//! metric whose workload-state histogram diverges from the metric
//! population's median. The engine runs with a multi-sample batch size,
//! so the replay exercises the columnar `RowBlock` transport path
//! end-to-end.

use std::collections::BTreeMap;
use std::fmt;

use asdf_core::config::Config;
use asdf_core::dag::Dag;
use asdf_core::engine::TickEngine;
use asdf_core::error::ModuleError;
use asdf_core::module::{InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::registry::ModuleRegistry;
use asdf_core::time::TickDuration;
use asdf_modules::training::BlackBoxModel;

/// Tuning for [`run_dogfood`]. The defaults are sized for BENCH-history
/// scales (tens of records), not the paper's 60-sample node windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DogfoodConfig {
    /// `mavgvec` smoothing window (slide 1).
    pub mavg_window: usize,
    /// `analysis_bb` state-histogram window.
    pub bb_window: usize,
    /// `analysis_bb` evaluation slide.
    pub bb_slide: usize,
    /// `analysis_bb` L1 alarm threshold (the histogram L1 ranges up to
    /// `2·bb_window`).
    pub threshold: f64,
    /// Anomalous windows required before an alarm.
    pub consecutive: usize,
    /// Workload states for the 1-d k-means / `knn` classifier.
    pub n_states: usize,
    /// Engine batch size — kept above 1 so the replay drives the
    /// columnar row-block path.
    pub batch_size: usize,
    /// k-means seed (the whole replay is deterministic).
    pub seed: u64,
}

impl Default for DogfoodConfig {
    fn default() -> Self {
        // mavg_window 1 keeps window samples independent: smoothing with
        // slide 1 autocorrelates consecutive samples, which multiplies
        // the variance of the state histograms and makes healthy peers
        // diverge. Few, coarse states plus a wide histogram window keep
        // the healthy population's L1 spread well under half the range
        // (threshold = bb_window = half of the 2·bb_window maximum),
        // while a regressed metric parks in its own state and saturates.
        DogfoodConfig {
            mavg_window: 1,
            bb_window: 16,
            bb_slide: 1,
            threshold: 16.0,
            consecutive: 2,
            n_states: 3,
            batch_size: 64,
            seed: 0x5eed,
        }
    }
}

impl DogfoodConfig {
    /// Minimum series length that yields at least one `analysis_bb`
    /// evaluation window.
    pub fn min_points(&self) -> usize {
        self.mavg_window + self.bb_window
    }
}

/// What the dogfood DAG concluded about one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DogfoodVerdict {
    /// The metric (the "node" in the peer comparison).
    pub metric: String,
    /// Evaluation windows `analysis_bb` scored.
    pub evaluations: usize,
    /// Windows on which the alarm output was raised.
    pub alarm_windows: usize,
    /// Tick-second of the first raised alarm (≈ index into the history
    /// series, offset by the window warm-up), if any.
    pub first_alarm_secs: Option<u64>,
    /// Largest L1 distance from the population median histogram.
    pub max_dist: f64,
    /// The threshold those distances were compared against.
    pub threshold: f64,
}

impl DogfoodVerdict {
    /// Whether the DAG fingerpointed this metric.
    pub fn flagged(&self) -> bool {
        self.alarm_windows > 0
    }
}

/// A structural failure building or running the dogfood DAG (too few
/// metrics, ragged series, replay shorter than the warm-up, or an engine
/// error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DogfoodError(pub String);

impl fmt::Display for DogfoodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dogfood: {}", self.0)
    }
}

impl std::error::Error for DogfoodError {}

/// A periodic source replaying one pre-normalized metric series, one
/// 1-component row per tick through `emit_row` (the columnar entry
/// point), with the metric name as the envelope origin.
#[derive(Default)]
struct PerfSeries {
    port: Option<PortId>,
    values: Vec<f64>,
    next: usize,
}

impl Module for PerfSeries {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        let origin = ctx.require_param("origin")?.to_owned();
        self.values = ctx
            .require_param("series")?
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<f64>()
                    .map_err(|e| ModuleError::invalid_parameter("series", e.to_string()))
            })
            .collect::<Result<_, _>>()?;
        self.port = Some(ctx.declare_output_with_origin("out", origin));
        ctx.request_periodic(TickDuration::SECOND);
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
        if let Some(&x) = self.values.get(self.next) {
            self.next += 1;
            ctx.emit_row(self.port.unwrap(), &[x]);
        }
        Ok(())
    }
}

/// Robustly normalizes a series onto the shared dogfood scale: z-scores
/// against the median/MAD of a *leading* baseline window (first third,
/// at least 5 points — a regression near the end must not contaminate
/// its own baseline), clamped to ±6, shifted by +8 so every value is
/// positive for `knn`'s `log(1+x)` transform.
fn normalize(xs: &[f64]) -> Vec<f64> {
    let base_len = (xs.len() / 3).max(5).min(xs.len());
    let mut base: Vec<f64> = xs[..base_len].to_vec();
    base.sort_by(|a, b| a.partial_cmp(b).expect("finite metric values"));
    let median = base[base.len() / 2];
    let mut dev: Vec<f64> = base.iter().map(|x| (x - median).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mad = dev[dev.len() / 2];
    // 1.4826·MAD ≈ σ for normal noise; floor the scale so a perfectly
    // flat baseline still yields large-but-finite z for real shifts.
    let scale = (1.4826 * mad).max(0.01 * median.abs()).max(1e-9);
    xs.iter()
        .map(|x| ((x - median) / scale).clamp(-6.0, 6.0) + 8.0)
        .collect()
}

/// Trailing moving averages with window `w`, slide 1 — the same sequence
/// `mavgvec` emits, so the k-means model is fit on exactly the values
/// `knn` will classify.
fn smoothed(xs: &[f64], w: usize) -> Vec<f64> {
    if xs.len() < w {
        return Vec::new();
    }
    (w..=xs.len())
        .map(|end| xs[end - w..end].iter().sum::<f64>() / w as f64)
        .collect()
}

/// Replays the metric series through the real ASDF DAG and returns one
/// verdict per metric, in input order.
///
/// # Errors
///
/// [`DogfoodError`] when the input is structurally unusable (fewer than
/// 3 metrics for peer comparison, unequal series lengths, series shorter
/// than [`DogfoodConfig::min_points`]) or the engine fails.
pub fn run_dogfood(
    series: &BTreeMap<String, Vec<f64>>,
    cfg: &DogfoodConfig,
) -> Result<Vec<DogfoodVerdict>, DogfoodError> {
    if series.len() < 3 {
        return Err(DogfoodError(format!(
            "peer comparison needs >= 3 metrics, got {}",
            series.len()
        )));
    }
    let n = series.values().next().expect("non-empty").len();
    if series.values().any(|v| v.len() != n) {
        return Err(DogfoodError("metric series have unequal lengths".into()));
    }
    if n < cfg.min_points() {
        return Err(DogfoodError(format!(
            "need >= {} aligned records for one evaluation window, got {n}",
            cfg.min_points()
        )));
    }
    if series.values().any(|v| v.iter().any(|x| !x.is_finite())) {
        return Err(DogfoodError("non-finite metric value".into()));
    }

    // Normalize per metric, then fit the 1-d workload-state model on the
    // pooled *smoothed* values — the exact population knn will see.
    let normalized: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(name, xs)| (name.as_str(), normalize(xs)))
        .collect();
    let pooled: Vec<Vec<f64>> = normalized
        .iter()
        .flat_map(|(_, v)| smoothed(v, cfg.mavg_window))
        .map(|x| vec![x])
        .collect();
    let model = BlackBoxModel::fit(&pooled, cfg.n_states, cfg.seed);
    let (centroids, stddev) = (model.centroids_param(), model.stddev_param());

    // Render the DAG in the paper's config dialect: one
    // perfseries → mavgvec → knn chain per metric, fanned into one
    // analysis_bb peer comparison.
    let mut config_text = String::new();
    let mut bb_inputs = String::new();
    for (i, (name, values)) in normalized.iter().enumerate() {
        let rendered: Vec<String> = values.iter().map(|x| format!("{x:.6}")).collect();
        config_text.push_str(&format!(
            "[perfseries]\nid = src{i}\norigin = {name}\nseries = {}\n\n\
             [mavgvec]\nid = avg{i}\nwindow = {}\nslide = 1\nemit = mean\n\
             input[input] = src{i}.out\n\n\
             [knn]\nid = nn{i}\ncentroids = {centroids}\nstddev = {stddev}\n\
             input[input] = avg{i}.mean\n\n",
            rendered.join(","),
            cfg.mavg_window,
        ));
        bb_inputs.push_str(&format!("input[l{i}] = nn{i}.output0\n"));
    }
    config_text.push_str(&format!(
        "[analysis_bb]\nid = bb\nn_states = {}\nwindow = {}\nslide = {}\n\
         threshold = {}\nconsecutive = {}\n{bb_inputs}",
        cfg.n_states, cfg.bb_window, cfg.bb_slide, cfg.threshold, cfg.consecutive,
    ));

    let mut registry = ModuleRegistry::new();
    asdf_modules::register_analysis_modules(&mut registry);
    registry.register("perfseries", || Box::new(PerfSeries::default()));

    let parsed: Config = config_text
        .parse()
        .map_err(|e| DogfoodError(format!("config: {e}")))?;
    let dag = Dag::build(&registry, &parsed).map_err(|e| DogfoodError(format!("dag: {e}")))?;
    let mut engine = TickEngine::new(dag);
    engine.set_batch_size(cfg.batch_size.max(1));
    let tap = engine
        .tap("bb")
        .ok_or_else(|| DogfoodError("analysis_bb tap missing".into()))?;
    engine
        .run_for(TickDuration::from_secs(n as u64))
        .map_err(|e| DogfoodError(format!("engine: {e}")))?;

    // Fold the alarm/dist envelopes back into per-metric verdicts; the
    // envelope origin is the metric name by construction.
    let mut verdicts: Vec<DogfoodVerdict> = normalized
        .iter()
        .map(|(name, _)| DogfoodVerdict {
            metric: (*name).to_owned(),
            evaluations: 0,
            alarm_windows: 0,
            first_alarm_secs: None,
            max_dist: 0.0,
            threshold: cfg.threshold,
        })
        .collect();
    let index: BTreeMap<&str, usize> = normalized
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (*name, i))
        .collect();
    for env in tap.drain() {
        let Some(&i) = index.get(env.source.origin.as_str()) else {
            continue;
        };
        let v = &mut verdicts[i];
        if env.source.name.starts_with("alarm") {
            v.evaluations += 1;
            if env.sample.value.as_bool() == Some(true) {
                v.alarm_windows += 1;
                let secs = env.sample.timestamp.as_secs();
                v.first_alarm_secs = Some(v.first_alarm_secs.map_or(secs, |f| f.min(secs)));
            }
        } else if env.source.name.starts_with("dist") {
            if let Some(d) = env.sample.value.as_float() {
                v.max_dist = v.max_dist.max(d);
            }
        }
    }
    if verdicts.iter().all(|v| v.evaluations == 0) {
        return Err(DogfoodError(
            "no evaluation windows completed (replay shorter than warm-up?)".into(),
        ));
    }
    Ok(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn noisy(base: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| base * (1.0 + 0.01 * rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn healthy_trio(n: usize) -> BTreeMap<String, Vec<f64>> {
        [
            ("campaign_serial_secs", noisy(0.52, n, 11)),
            ("parser_lines_per_sec", noisy(4.2e6, n, 12)),
            ("scan_speedup", noisy(1.98, n, 13)),
            ("envelopes_per_sec_b64", noisy(5.2e6, n, 14)),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect()
    }

    #[test]
    fn flags_the_regressed_metric_and_only_it() {
        let mut series = healthy_trio(60);
        // 20% regression in one metric from index 30 on.
        let victim = series.get_mut("campaign_serial_secs").unwrap();
        for x in victim.iter_mut().skip(30) {
            *x *= 1.2;
        }
        let verdicts = run_dogfood(&series, &DogfoodConfig::default()).expect("dag runs");
        let flagged: Vec<&str> = verdicts
            .iter()
            .filter(|v| v.flagged())
            .map(|v| v.metric.as_str())
            .collect();
        assert_eq!(flagged, ["campaign_serial_secs"], "{verdicts:?}");
        let v = verdicts
            .iter()
            .find(|v| v.metric == "campaign_serial_secs")
            .unwrap();
        // The first alarm lands after the change enters the window stack:
        // change at tick 31, plus the histogram filling past the
        // threshold plus the consecutive-window gate.
        let first = v.first_alarm_secs.expect("alarmed");
        assert!(
            (31..=31 + (1 + 16 + 2) as u64).contains(&first),
            "first alarm at {first}"
        );
        assert!(v.max_dist > v.threshold);
    }

    #[test]
    fn healthy_history_raises_no_alarms() {
        let verdicts = run_dogfood(&healthy_trio(60), &DogfoodConfig::default()).expect("runs");
        assert!(verdicts.iter().all(|v| !v.flagged()), "{verdicts:?}");
        assert!(verdicts.iter().all(|v| v.evaluations > 0));
    }

    #[test]
    fn structural_misuse_is_rejected() {
        let cfg = DogfoodConfig::default();
        let mut two = healthy_trio(60);
        two.remove("scan_speedup");
        two.remove("envelopes_per_sec_b64");
        assert!(run_dogfood(&two, &cfg).is_err());
        let short = healthy_trio(cfg.min_points() - 1);
        assert!(run_dogfood(&short, &cfg).is_err());
        let mut ragged = healthy_trio(60);
        ragged.get_mut("scan_speedup").unwrap().pop();
        assert!(run_dogfood(&ragged, &cfg).is_err());
    }

    #[test]
    fn batched_and_serial_replays_agree() {
        let mut series = healthy_trio(40);
        let victim = series.get_mut("scan_speedup").unwrap();
        for x in victim.iter_mut().skip(20) {
            *x *= 0.8;
        }
        let batched = run_dogfood(&series, &DogfoodConfig::default()).unwrap();
        let serial = run_dogfood(
            &series,
            &DogfoodConfig {
                batch_size: 1,
                ..DogfoodConfig::default()
            },
        )
        .unwrap();
        assert_eq!(batched, serial);
        assert!(batched
            .iter()
            .any(|v| v.flagged() && v.metric == "scan_speedup"));
    }
}
