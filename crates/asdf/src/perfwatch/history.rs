//! The `BENCH_history.jsonl` record schema: one JSON line per perfsuite
//! run, schema-versioned so the series survives layout changes.
//!
//! * **Schema 1** (current): `{"schema":1,"suite":"perfsuite",
//!   "ts_epoch_secs":…,"utc":"…Z","commit":"…","host":{"cores":…,
//!   "simd":"avx2|scalar"},"workers":…,"metrics":{…},"obs_digest":"…"}`.
//!   Every run carries its commit hash, UTC timestamp, host fingerprint
//!   (core count + kernel SIMD dispatch), worker configuration, the full
//!   flat map of section metrics, and the digest of the run's
//!   observability snapshot ([`asdf_obs::snapshot::snapshot_digest`]).
//! * **Schema 0** (legacy): the flat one-line records PR 6 wrote —
//!   `ts_epoch_secs`/`suite`/`workers` plus bare numeric metric fields,
//!   no commit or host metadata. [`parse_history`] normalizes them so the
//!   seed line stays a valid first point of every metric series.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use asdf_obs::json::{self, Value};

/// Version tag written into every new history record.
pub const HISTORY_SCHEMA: u32 = 1;

/// One perfsuite run in the BENCH time series.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Record layout version (0 = legacy pre-metadata line).
    pub schema: u32,
    /// Seconds since the UNIX epoch at record time.
    pub ts_epoch_secs: u64,
    /// `ts_epoch_secs` rendered as `YYYY-MM-DDTHH:MM:SSZ`.
    pub utc: String,
    /// Git commit hash of the measured tree (`unknown` for legacy lines).
    pub commit: String,
    /// Cores available to the run (0 when unrecorded).
    pub cores: usize,
    /// Kernel SIMD dispatch on the host (`avx2`, `scalar`, or `unknown`).
    pub simd: String,
    /// Campaign worker count the suite ran with.
    pub workers: usize,
    /// Flat name → value map of every section metric. Only finite values
    /// are recorded.
    pub metrics: BTreeMap<String, f64>,
    /// Digest of the run's full observability snapshot, when captured.
    pub obs_digest: Option<String>,
}

/// A failure loading the history file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryError {
    /// 1-based line the failure occurred on (0 = whole file).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "history line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for HistoryError {}

/// Renders `secs` since the UNIX epoch as `YYYY-MM-DDTHH:MM:SSZ`
/// (proleptic Gregorian, no leap seconds — the civil-from-days algorithm).
pub fn utc_from_epoch(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem / 60) % 60, rem % 60);
    // Howard Hinnant's civil_from_days: shift the epoch to 0000-03-01 so
    // leap days land at era ends.
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe as i64 + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}Z")
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a record as one schema-1 JSON line (no trailing newline).
/// Non-finite metric values are skipped — JSON has no spelling for them
/// and a NaN section metric is a bug to surface elsewhere, not to poison
/// the series with.
pub fn render_record(r: &HistoryRecord) -> String {
    let mut out = String::with_capacity(256 + 32 * r.metrics.len());
    let _ = write!(
        out,
        "{{\"schema\":{HISTORY_SCHEMA},\"suite\":\"perfsuite\",\"ts_epoch_secs\":{},\"utc\":\"",
        r.ts_epoch_secs
    );
    escape(&r.utc, &mut out);
    out.push_str("\",\"commit\":\"");
    escape(&r.commit, &mut out);
    let _ = write!(out, "\",\"host\":{{\"cores\":{},\"simd\":\"", r.cores);
    escape(&r.simd, &mut out);
    let _ = write!(out, "\"}},\"workers\":{},\"metrics\":{{", r.workers);
    let mut first = true;
    for (name, v) in &r.metrics {
        if !v.is_finite() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        escape(name, &mut out);
        let _ = write!(out, "\":{v}");
    }
    out.push('}');
    if let Some(d) = &r.obs_digest {
        out.push_str(",\"obs_digest\":\"");
        escape(d, &mut out);
        out.push('"');
    }
    out.push('}');
    out
}

fn num(v: &Value) -> Option<f64> {
    v.as_f64()
}

fn parse_line(line: &str, lineno: usize) -> Result<HistoryRecord, HistoryError> {
    let err = |message: String| HistoryError {
        line: lineno,
        message,
    };
    let doc = json::parse(line).map_err(|e| err(e.to_string()))?;
    let Value::Object(map) = &doc else {
        return Err(err("record is not a JSON object".into()));
    };
    let schema = map.get("schema").and_then(num).unwrap_or(0.0);
    if schema != 0.0 && schema != f64::from(HISTORY_SCHEMA) {
        return Err(err(format!("unsupported schema {schema}")));
    }
    let ts_epoch_secs = map
        .get("ts_epoch_secs")
        .and_then(num)
        .ok_or_else(|| err("missing ts_epoch_secs".into()))? as u64;

    if schema == 0.0 {
        // Legacy flat record: every numeric field apart from the envelope
        // fields is a metric; metadata defaults to "unknown".
        let mut metrics = BTreeMap::new();
        for (k, v) in map {
            if matches!(k.as_str(), "schema" | "ts_epoch_secs" | "workers" | "suite") {
                continue;
            }
            if let Some(x) = num(v) {
                metrics.insert(k.clone(), x);
            }
        }
        return Ok(HistoryRecord {
            schema: 0,
            ts_epoch_secs,
            utc: utc_from_epoch(ts_epoch_secs),
            commit: "unknown".to_owned(),
            cores: 0,
            simd: "unknown".to_owned(),
            workers: map.get("workers").and_then(num).unwrap_or(0.0) as usize,
            metrics,
            obs_digest: None,
        });
    }

    let host = map.get("host");
    let metrics = match map.get("metrics") {
        Some(Value::Object(m)) => m
            .iter()
            .filter_map(|(k, v)| num(v).map(|x| (k.clone(), x)))
            .collect(),
        _ => return Err(err("schema-1 record missing metrics object".into())),
    };
    Ok(HistoryRecord {
        schema: HISTORY_SCHEMA,
        ts_epoch_secs,
        utc: map
            .get("utc")
            .and_then(Value::as_str)
            .map_or_else(|| utc_from_epoch(ts_epoch_secs), str::to_owned),
        commit: map
            .get("commit")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_owned(),
        cores: host
            .and_then(|h| h.get("cores"))
            .and_then(num)
            .unwrap_or(0.0) as usize,
        simd: host
            .and_then(|h| h.get("simd"))
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_owned(),
        workers: map.get("workers").and_then(num).unwrap_or(0.0) as usize,
        metrics,
        obs_digest: map
            .get("obs_digest")
            .and_then(Value::as_str)
            .map(str::to_owned),
    })
}

/// Parses a whole `BENCH_history.jsonl` document (blank lines skipped),
/// normalizing legacy schema-0 lines.
///
/// # Errors
///
/// Returns [`HistoryError`] naming the first malformed line.
pub fn parse_history(text: &str) -> Result<Vec<HistoryRecord>, HistoryError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line, i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact seed line PR 6 wrote (plus the schema marker the backfill
    /// added) must stay parseable forever.
    const SEED_LINE: &str = r#"{"schema":0,"ts_epoch_secs":1786223772,"suite":"perfsuite","workers":1,"campaign_serial_secs":0.519,"campaign_pool_secs":0.527,"obs_overhead_pct":1.618,"engine_speedup_t4":0.978,"batch_speedup_b64":2.054,"envelopes_per_sec_b64":5235448,"scan_speedup":1.985,"parser_lines_per_sec":4256626}"#;

    #[test]
    fn seed_schema0_line_normalizes() {
        let recs = parse_history(SEED_LINE).expect("seed line parses");
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.schema, 0);
        assert_eq!(r.commit, "unknown");
        assert_eq!(r.simd, "unknown");
        assert_eq!(r.workers, 1);
        assert_eq!(r.metrics["campaign_serial_secs"], 0.519);
        assert_eq!(r.metrics["envelopes_per_sec_b64"], 5_235_448.0);
        assert_eq!(r.metrics.len(), 8);
        assert!(r.obs_digest.is_none());
        // The marker-less original line parses identically.
        let bare = SEED_LINE.replacen("{\"schema\":0,", "{", 1);
        assert_eq!(parse_history(&bare).unwrap()[0].metrics, r.metrics);
    }

    #[test]
    fn schema1_round_trips() {
        let rec = HistoryRecord {
            schema: HISTORY_SCHEMA,
            ts_epoch_secs: 1_786_223_772,
            utc: utc_from_epoch(1_786_223_772),
            commit: "abc123def456".to_owned(),
            cores: 4,
            simd: "avx2".to_owned(),
            workers: 2,
            metrics: [
                ("campaign_serial_secs".to_owned(), 0.5),
                ("scan_speedup".to_owned(), 1.985),
                ("nan_metric".to_owned(), f64::NAN),
            ]
            .into_iter()
            .collect(),
            obs_digest: Some("00ff00ff00ff00ff".to_owned()),
        };
        let line = render_record(&rec);
        assert!(!line.contains('\n'));
        let back = &parse_history(&line).expect("round trip")[0];
        assert_eq!(back.commit, rec.commit);
        assert_eq!(back.cores, 4);
        assert_eq!(back.simd, "avx2");
        assert_eq!(back.obs_digest, rec.obs_digest);
        // The NaN metric is dropped at render time, the rest survive.
        assert_eq!(back.metrics.len(), 2);
        assert_eq!(back.metrics["scan_speedup"], 1.985);
    }

    #[test]
    fn utc_formatting_matches_known_dates() {
        assert_eq!(utc_from_epoch(0), "1970-01-01T00:00:00Z");
        assert_eq!(utc_from_epoch(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(utc_from_epoch(1_786_223_772), "2026-08-08T21:16:12Z");
        assert_eq!(utc_from_epoch(86_399), "1970-01-01T23:59:59Z");
    }

    #[test]
    fn mixed_schemas_and_blank_lines() {
        let text = format!(
            "{SEED_LINE}\n\n{}\n",
            render_record(&HistoryRecord {
                schema: HISTORY_SCHEMA,
                ts_epoch_secs: 1,
                utc: utc_from_epoch(1),
                commit: "c".into(),
                cores: 1,
                simd: "scalar".into(),
                workers: 1,
                metrics: [("scan_speedup".to_owned(), 2.0)].into_iter().collect(),
                obs_digest: None,
            })
        );
        let recs = parse_history(&text).expect("mixed history parses");
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].schema, 0);
        assert_eq!(recs[1].schema, 1);
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let err = parse_history("{\"ts_epoch_secs\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_history(r#"{"schema":7,"ts_epoch_secs":1}"#).unwrap_err();
        assert!(err.message.contains("unsupported schema"));
        let err = parse_history(r#"{"schema":1,"ts_epoch_secs":1}"#).unwrap_err();
        assert!(err.message.contains("metrics"));
    }
}
