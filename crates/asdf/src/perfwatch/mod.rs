//! `perfwatch` — the dogfooded perf-regression watchdog.
//!
//! The reproduction's benchmark suite appends one schema-versioned record
//! per run to `BENCH_history.jsonl` ([`history`]). This module watches
//! that series with two *independent* detectors and cross-checks them:
//!
//! 1. [`edivisive`] — E-Divisive-mean change-point detection per metric,
//!    the technique MongoDB's performance CI uses: nonparametric, needs
//!    no baseline labels, localizes *when* a metric's distribution
//!    shifted and by how much.
//! 2. [`dogfood`] — the paper's own peer-comparison pipeline turned on
//!    itself: each metric becomes a "node", its normalized history is
//!    replayed through a real `perfseries → mavgvec → knn → analysis_bb`
//!    DAG (batched, so the columnar row-block transport is exercised),
//!    and `analysis_bb` fingerpoints the metric whose workload-state
//!    histogram diverges from the metric population.
//!
//! [`analyze`] runs both and assembles a [`report::PerfwatchReport`];
//! the `asdf perfwatch` subcommand renders it as markdown or JSON. The
//! watchdog is **advisory**: it ranks evidence and always exits cleanly,
//! leaving gating decisions to humans (see DESIGN.md §Perfwatch).

pub mod dogfood;
pub mod edivisive;
pub mod history;
pub mod report;

use std::collections::BTreeMap;

pub use dogfood::{run_dogfood, DogfoodConfig, DogfoodVerdict};
pub use edivisive::{detect, ChangePoint, DetectorConfig};
pub use history::{parse_history, render_record, utc_from_epoch, HistoryError, HistoryRecord};
pub use report::{Agreement, MetricFinding, PerfwatchReport};

/// Options for [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzeOptions {
    /// E-Divisive tuning.
    pub detector: DetectorConfig,
    /// Dogfood tuning; `None` disables the DAG replay.
    pub dogfood: Option<DogfoodConfig>,
    /// Minimum points a metric series needs before change-point
    /// detection considers it.
    pub min_points: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            detector: DetectorConfig::default(),
            dogfood: Some(DogfoodConfig::default()),
            min_points: 8,
        }
    }
}

/// Runs the full watchdog over a `BENCH_history.jsonl` document: parses
/// the records (legacy schema-0 lines included), runs E-Divisive per
/// metric, replays the aligned metric matrix through the dogfood DAG,
/// and cross-checks the two detectors.
///
/// # Errors
///
/// [`HistoryError`] when the history itself is unreadable. A history too
/// short to analyze is *not* an error — the report simply carries no
/// findings (the watchdog is advisory and must be safe to run from the
/// very first record).
pub fn analyze(history_text: &str, opts: &AnalyzeOptions) -> Result<PerfwatchReport, HistoryError> {
    let records = parse_history(history_text)?;
    let n_records = records.len();
    let n_schema0 = records.iter().filter(|r| r.schema == 0).count();
    let span_utc = match (records.first(), records.last()) {
        (Some(a), Some(b)) => (a.utc.clone(), b.utc.clone()),
        _ => ("-".to_owned(), "-".to_owned()),
    };

    // Per-metric series over the records that carry the metric (schemas
    // may add metrics over time; E-Divisive runs per metric on whatever
    // subsequence exists).
    let mut series: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for r in &records {
        for (name, v) in &r.metrics {
            series.entry(name.clone()).or_default().push(*v);
        }
    }

    let mut findings: Vec<MetricFinding> = series
        .iter()
        .map(|(metric, xs)| MetricFinding {
            metric: metric.clone(),
            n_points: xs.len(),
            change_points: if xs.len() >= opts.min_points {
                detect(xs, &opts.detector)
            } else {
                Vec::new()
            },
        })
        .collect();
    // Loudest metrics first; quiet ones keep alphabetical order.
    findings.sort_by(|a, b| {
        b.max_abs_shift_pct()
            .partial_cmp(&a.max_abs_shift_pct())
            .expect("finite shifts")
            .then_with(|| a.metric.cmp(&b.metric))
    });

    // Dogfood needs a rectangular matrix: metrics present in *every*
    // record, in record order.
    let (dogfood_verdicts, dogfood_skipped) = match &opts.dogfood {
        None => (Vec::new(), Some("disabled".to_owned())),
        Some(cfg) => {
            let aligned: BTreeMap<String, Vec<f64>> = series
                .iter()
                .filter(|(_, xs)| xs.len() == n_records)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            if aligned.len() < 3 || n_records < cfg.min_points() {
                (
                    Vec::new(),
                    Some(format!(
                        "needs >= 3 aligned metrics over >= {} records, have {} over {}",
                        cfg.min_points(),
                        aligned.len(),
                        n_records
                    )),
                )
            } else {
                match run_dogfood(&aligned, cfg) {
                    Ok(v) => (v, None),
                    Err(e) => (Vec::new(), Some(e.to_string())),
                }
            }
        }
    };

    let mut rep = PerfwatchReport {
        n_records,
        n_schema0,
        span_utc,
        findings,
        dogfood_verdicts,
        dogfood_skipped,
        agreement: Agreement::BothQuiet,
    };
    rep.agreement = if rep.dogfood_skipped.is_some() {
        Agreement::DogfoodSkipped
    } else {
        let shifted = rep.shifted_metrics();
        let flagged = rep.dogfood_flagged();
        let mut a = shifted.clone();
        a.sort();
        let mut b = flagged.clone();
        b.sort();
        if a.is_empty() && b.is_empty() {
            Agreement::BothQuiet
        } else if a == b {
            Agreement::Agree(a)
        } else {
            Agreement::Disagree {
                edivisive: a,
                dogfood: b,
            }
        }
    };
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_history(n: usize, step_at: usize) -> String {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let mut noise = |base: f64| base * (1.0 + 0.01 * rng.gen_range(-1.0..1.0));
        (0..n)
            .map(|i| {
                let mut r = HistoryRecord {
                    schema: history::HISTORY_SCHEMA,
                    ts_epoch_secs: 1_786_000_000 + i as u64 * 3600,
                    utc: utc_from_epoch(1_786_000_000 + i as u64 * 3600),
                    commit: format!("commit{i}"),
                    cores: 4,
                    simd: "avx2".into(),
                    workers: 1,
                    metrics: BTreeMap::new(),
                    obs_digest: None,
                };
                let slow = if i >= step_at { 1.2 } else { 1.0 };
                r.metrics
                    .insert("campaign_serial_secs".into(), noise(0.52) * slow);
                r.metrics.insert("scan_speedup".into(), noise(1.98));
                r.metrics
                    .insert("parser_lines_per_sec".into(), noise(4.2e6));
                r.metrics
                    .insert("envelopes_per_sec_b64".into(), noise(5.2e6));
                render_record(&r)
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn both_detectors_agree_on_an_injected_step() {
        let text = synthetic_history(60, 30);
        let rep = analyze(&text, &AnalyzeOptions::default()).expect("analyzes");
        assert_eq!(rep.n_records, 60);
        // E-Divisive names the right metric at the right index...
        assert_eq!(rep.shifted_metrics(), ["campaign_serial_secs"]);
        let cp = &rep.findings[0].change_points[0];
        assert!((28..=32).contains(&cp.index), "index {}", cp.index);
        // ...the dogfood DAG fingerpoints the same metric...
        assert_eq!(rep.dogfood_skipped, None);
        assert_eq!(rep.dogfood_flagged(), ["campaign_serial_secs"]);
        // ...and the report records the agreement.
        assert_eq!(
            rep.agreement,
            Agreement::Agree(vec!["campaign_serial_secs".to_owned()])
        );
        // The loudest metric sorts first.
        assert_eq!(rep.findings[0].metric, "campaign_serial_secs");
    }

    #[test]
    fn tiny_history_reports_quietly_instead_of_failing() {
        let text = synthetic_history(2, 99);
        let rep = analyze(&text, &AnalyzeOptions::default()).expect("analyzes");
        assert_eq!(rep.n_records, 2);
        assert!(rep.shifted_metrics().is_empty());
        assert!(rep.dogfood_skipped.is_some());
        assert_eq!(rep.agreement, Agreement::DogfoodSkipped);
        // Empty history is fine too.
        let empty = analyze("", &AnalyzeOptions::default()).unwrap();
        assert_eq!(empty.n_records, 0);
    }

    #[test]
    fn seed_plus_synthetic_schema1_lines_mix() {
        let seed = r#"{"schema":0,"ts_epoch_secs":1786223772,"suite":"perfsuite","workers":1,"campaign_serial_secs":0.519,"scan_speedup":1.985}"#;
        let text = format!("{seed}\n{}", synthetic_history(10, 999));
        let rep = analyze(&text, &AnalyzeOptions::default()).expect("mixed history analyzes");
        assert_eq!(rep.n_records, 11);
        assert_eq!(rep.n_schema0, 1);
        // The seed-born metrics span all 11 records; the schema-1-only
        // metric spans 10.
        let by_name = |n: &str| rep.findings.iter().find(|f| f.metric == n).unwrap();
        assert_eq!(by_name("campaign_serial_secs").n_points, 11);
        assert_eq!(by_name("parser_lines_per_sec").n_points, 10);
    }
}
