//! Plain-text rendering of experiment results, in the shape of the
//! paper's tables and figures.

use crate::experiments::{BandwidthRow, FaultResult, OverheadRow};

/// Nominal resident footprint of fpt-core state per monitored node, MB —
/// reported alongside the measured daemon numbers in Table 3. Derived from
/// the deployment's per-node module state (metric buffers, windows,
/// parser live-sets) at the paper's windowSize of 60.
pub const FPT_CORE_STATE_MB: f64 = 5.1;

/// Renders a Figure 6 sweep as a two-column table.
pub fn render_sweep(title: &str, x_label: &str, rows: &[(f64, f64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{x_label:>12} | FP rate (%)");
    let _ = writeln!(out, "{}", "-".repeat(28));
    for (x, fp) in rows {
        let _ = writeln!(out, "{x:>12.1} | {fp:>10.2}");
    }
    out
}

/// Renders Figure 7(a)/(b) as one table: balanced accuracy and latency per
/// fault and analysis path.
pub fn render_fig7(rows: &[FaultResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} | {:>7} {:>7} {:>7} | {:>8} {:>8} {:>8}",
        "Fault", "BA-bb%", "BA-wb%", "BA-all%", "lat-bb", "lat-wb", "lat-all"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    let fmt_lat = |l: Option<u64>| match l {
        Some(s) => format!("{s}s"),
        None => "--".to_owned(),
    };
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} | {:>7.1} {:>7.1} {:>7.1} | {:>8} {:>8} {:>8}",
            r.fault.name(),
            r.ba_black_box,
            r.ba_white_box,
            r.ba_combined,
            fmt_lat(r.lat_black_box),
            fmt_lat(r.lat_white_box),
            fmt_lat(r.lat_combined),
        );
    }
    let mean =
        |f: fn(&FaultResult) -> f64| rows.iter().map(f).sum::<f64>() / rows.len().max(1) as f64;
    let _ = writeln!(out, "{}", "-".repeat(72));
    let _ = writeln!(
        out,
        "{:<12} | {:>7.1} {:>7.1} {:>7.1} |",
        "mean",
        mean(|r| r.ba_black_box),
        mean(|r| r.ba_white_box),
        mean(|r| r.ba_combined),
    );
    out
}

/// Renders Table 3 (collection overhead).
pub fn render_table3(rows: &[OverheadRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} | {:>8} | {:>12}",
        "Process", "% CPU", "Memory (MB)"
    );
    let _ = writeln!(out, "{}", "-".repeat(58));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<32} | {:>8.4} | {:>12.2}",
            r.process, r.cpu_percent, r.memory_mb
        );
    }
    out
}

/// Renders Table 4 (RPC bandwidth).
pub fn render_table4(rows: &[BandwidthRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>16} | {:>18}",
        "RPC Type", "Static Ovh. (kB)", "Per-iter BW (kB/s)"
    );
    let _ = writeln!(out, "{}", "-".repeat(52));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} | {:>16.2} | {:>18.2}",
            r.rpc_type, r.static_kb, r.per_iter_kb
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadoop_sim::faults::FaultKind;

    #[test]
    fn sweep_rendering_includes_all_rows() {
        let s = render_sweep("Fig 6(a)", "threshold", &[(0.0, 97.5), (60.0, 1.25)]);
        assert!(s.contains("Fig 6(a)"));
        assert!(s.contains("97.50"));
        assert!(s.contains("1.25"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn fig7_rendering_handles_missing_latencies() {
        let rows = vec![FaultResult {
            fault: FaultKind::Hadoop1152,
            ba_black_box: 55.0,
            ba_white_box: 85.0,
            ba_combined: 86.0,
            lat_black_box: None,
            lat_white_box: Some(420),
            lat_combined: Some(420),
        }];
        let s = render_fig7(&rows);
        assert!(s.contains("HADOOP-1152"));
        assert!(s.contains("--"));
        assert!(s.contains("420s"));
        assert!(s.contains("mean"));
    }

    #[test]
    fn tables_render_measured_rows() {
        let s = render_table3(&[crate::experiments::OverheadRow {
            process: "sadc_rpcd",
            cpu_percent: 0.355,
            memory_mb: 0.77,
        }]);
        assert!(s.contains("sadc_rpcd"));
        assert!(s.contains("0.3550"));

        let s = render_table4(&[crate::experiments::BandwidthRow {
            rpc_type: "sadc-tcp",
            static_kb: 1.98,
            per_iter_kb: 1.22,
        }]);
        assert!(s.contains("sadc-tcp"));
        assert!(s.contains("1.98"));
    }
}
