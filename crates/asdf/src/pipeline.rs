//! Assembles the paper's Figure-4 fingerpointing DAGs.
//!
//! [`AsdfBuilder`] generates an `fpt-core` configuration (in the paper's
//! own config dialect — it can be dumped with
//! [`Deployment::config_text`]) wiring, per slave node:
//!
//! * **black-box**: `sadc` → `knn` (1-NN against trained centroids) →
//!   `analysis_bb` (state-histogram L1 peer comparison);
//! * **white-box**: `hadoop_log` (TaskTracker and DataNode) → `mavgvec`
//!   (windowed mean + stddev) → `analysis_wb` (median peer comparison
//!   with the `max(1, k·σ_median)` threshold).
//!
//! One `cluster_driver` instance advances the simulated cluster and clocks
//! every collector, standing in for wall-clock scheduling on a live
//! deployment.

use std::collections::HashMap;
use std::sync::Arc;

use asdf_core::config::{Config, InstanceConfig};
use asdf_core::dag::Dag;
use asdf_core::engine::{TapHandle, TickEngine};
use asdf_core::error::BuildDagError;
use asdf_core::registry::ModuleRegistry;
use asdf_core::time::TickDuration;
use asdf_modules::training::BlackBoxModel;
use asdf_rpc::daemons::ClusterHandle;
use hadoop_sim::cluster::Cluster;

/// Tunable knobs of a fingerpointing deployment.
#[derive(Debug, Clone)]
pub struct AsdfOptions {
    /// Analysis window, in samples (paper: 60).
    pub window: usize,
    /// Samples between window evaluations (default = `window`,
    /// non-overlapping).
    pub slide: usize,
    /// Black-box L1 alarm threshold (paper sweeps 0–70, uses 60).
    pub bb_threshold: f64,
    /// White-box threshold multiplier k (paper sweeps 0–5, uses 3).
    pub wb_k: f64,
    /// Consecutive anomalous windows required before an alarm (paper: "at
    /// least 3 consecutive windows to gain confidence").
    pub consecutive: usize,
    /// Build the black-box path.
    pub black_box: bool,
    /// Build the white-box path.
    pub white_box: bool,
    /// Add the Orion+-style `metric_rank` stage to the black-box path:
    /// per node, ranks which collected metrics deviate most from the peer
    /// baseline (tap `mr`). Off by default — node fingerpointing alone
    /// reproduces the paper.
    pub metric_rank: bool,
    /// Metrics reported per node by `metric_rank`.
    pub rank_top: usize,
    /// Engine worker threads sharding each tick (`1` = serial, `0` = all
    /// available parallelism). Results are identical at any setting.
    pub engine_threads: usize,
    /// Envelopes accumulated per edge before a batched lane hand-off
    /// (`1` = per-sample delivery). Purely a transport knob: outputs are
    /// bitwise identical at any setting.
    pub batch_size: usize,
    /// Rack count for the fleet-scale metric path: `> 1` tree-reduces the
    /// collector edges through per-rack `rack_agg` summaries before a
    /// rack-mode `metric_rank`, so the global DAG stage moves O(racks)
    /// rows instead of O(nodes) metric vectors. Rankings are bitwise
    /// identical to the flat wiring. `0`/`1` = flat per-node wiring.
    pub racks: usize,
}

impl Default for AsdfOptions {
    fn default() -> Self {
        AsdfOptions {
            window: 60,
            slide: 60,
            bb_threshold: 60.0,
            wb_k: 3.0,
            consecutive: 3,
            black_box: true,
            white_box: true,
            metric_rank: false,
            rank_top: 5,
            engine_threads: 1,
            batch_size: 64,
            racks: 0,
        }
    }
}

/// Builds a [`Deployment`] for a cluster.
#[derive(Debug)]
pub struct AsdfBuilder {
    options: AsdfOptions,
    model: Option<Arc<BlackBoxModel>>,
}

impl AsdfBuilder {
    /// Starts a builder with the given options.
    pub fn new(options: AsdfOptions) -> Self {
        AsdfBuilder {
            options,
            model: None,
        }
    }

    /// Supplies the trained black-box workload model (required when
    /// `options.black_box` is set).
    ///
    /// Accepts an owned model or an [`Arc`]; campaigns hand the same
    /// `Arc` to many concurrent deployments without copying the centroid
    /// matrix.
    #[must_use]
    pub fn with_model(mut self, model: impl Into<Arc<BlackBoxModel>>) -> Self {
        self.model = Some(model.into());
        self
    }

    /// Generates the `fpt-core` configuration for `n_nodes` slaves, with
    /// the default generated hostnames (`slave00`, `slave01`, …).
    ///
    /// # Panics
    ///
    /// Panics if the black-box path is requested without a model.
    pub fn config(&self, n_nodes: usize) -> Config {
        let names: Vec<String> = (0..n_nodes).map(|i| format!("slave{i:02}")).collect();
        self.config_with_names(&names)
    }

    /// Generates the `fpt-core` configuration for the named slaves (one
    /// name per node, in node order — deployments pass the cluster's real
    /// hostnames so rack-mode rankings keep per-node origins).
    ///
    /// # Panics
    ///
    /// Panics if the black-box path is requested without a model.
    pub fn config_with_names(&self, names: &[String]) -> Config {
        let n_nodes = names.len();
        let o = &self.options;
        let mut cfg = Config::new();
        let push = |cfg: &mut Config, inst: InstanceConfig| {
            cfg.push(inst).expect("generated ids are unique");
        };

        push(&mut cfg, InstanceConfig::new("cluster_driver", "drv"));

        if o.black_box {
            let model = self
                .model
                .as_ref()
                .expect("black-box pipeline requires a trained model");
            // Rendering the centroid matrix to text is O(n_states × dim);
            // do it once, not once per node.
            let centroids_text = model.centroids_param();
            let stddev_text = model.stddev_param();
            for i in 0..n_nodes {
                push(
                    &mut cfg,
                    InstanceConfig::new("sadc", format!("sadc{i}"))
                        .with_param("node", i)
                        .with_input("clock", "drv", "tick"),
                );
                push(
                    &mut cfg,
                    InstanceConfig::new("knn", format!("onenn{i}"))
                        .with_param("centroids", centroids_text.clone())
                        .with_param("stddev", stddev_text.clone())
                        .with_param("k", 1)
                        .with_input("input", format!("sadc{i}"), "output0"),
                );
            }
            let mut bb = InstanceConfig::new("analysis_bb", "bb")
                .with_param("n_states", model.n_states())
                .with_param("window", o.window)
                .with_param("slide", o.slide)
                .with_param("threshold", o.bb_threshold)
                .with_param("consecutive", o.consecutive);
            for i in 0..n_nodes {
                bb = bb.with_input(format!("l{i}"), format!("onenn{i}"), "output0");
            }
            push(&mut cfg, bb);
            push(
                &mut cfg,
                InstanceConfig::new("print", "BlackBoxAlarm").with_input_all("a", "bb"),
            );
        } else if o.metric_rank {
            // Metric ranking without the classifier still needs the
            // per-node collector edges.
            for i in 0..n_nodes {
                push(
                    &mut cfg,
                    InstanceConfig::new("sadc", format!("sadc{i}"))
                        .with_param("node", i)
                        .with_input("clock", "drv", "tick"),
                );
            }
        }

        if o.metric_rank {
            // Rank metric deviations on the same collector edges the
            // classifier consumes — no extra collection cost.
            let n_racks = o.racks.min(n_nodes);
            if n_racks > 1 {
                // Fleet wiring: per-rack tree-reduce, then a rack-mode
                // global ranker over O(racks) summary rows.
                let per_rack = n_nodes.div_ceil(n_racks);
                let mut mr = InstanceConfig::new("metric_rank", "mr")
                    .with_param("top", o.rank_top)
                    .with_param("nodes", names.join(","));
                let mut rack = 0;
                let mut start = 0;
                while start < n_nodes {
                    let end = (start + per_rack).min(n_nodes);
                    let mut ra = InstanceConfig::new("rack_agg", format!("ra{rack}"))
                        .with_param("window", o.window)
                        .with_param("slide", o.slide);
                    for (local, i) in (start..end).enumerate() {
                        ra = ra.with_input(format!("m{local}"), format!("sadc{i}"), "output0");
                    }
                    push(&mut cfg, ra);
                    mr = mr.with_input(format!("r{rack}"), format!("ra{rack}"), "sum");
                    rack += 1;
                    start = end;
                }
                push(&mut cfg, mr);
            } else {
                let mut mr = InstanceConfig::new("metric_rank", "mr")
                    .with_param("window", o.window)
                    .with_param("slide", o.slide)
                    .with_param("top", o.rank_top);
                for i in 0..n_nodes {
                    mr = mr.with_input(format!("m{i}"), format!("sadc{i}"), "output0");
                }
                push(&mut cfg, mr);
            }
        }

        if o.white_box {
            for (daemon, tag) in [("tasktracker", "tt"), ("datanode", "dn")] {
                for i in 0..n_nodes {
                    push(
                        &mut cfg,
                        InstanceConfig::new("hadoop_log", format!("hl_{tag}_{i}"))
                            .with_param("node", i)
                            .with_param("daemon", daemon)
                            .with_input("clock", "drv", "tick"),
                    );
                    push(
                        &mut cfg,
                        InstanceConfig::new("mavgvec", format!("avg_{tag}_{i}"))
                            .with_param("window", o.window)
                            .with_param("slide", o.slide)
                            .with_param("emit", "both")
                            .with_input("input", format!("hl_{tag}_{i}"), "output0"),
                    );
                }
                let mut wb = InstanceConfig::new("analysis_wb", format!("wb_{tag}"))
                    .with_param("k", o.wb_k)
                    .with_param("consecutive", o.consecutive);
                for i in 0..n_nodes {
                    wb = wb
                        .with_input(format!("a{i}"), format!("avg_{tag}_{i}"), "mean")
                        .with_input(format!("d{i}"), format!("avg_{tag}_{i}"), "stddev");
                }
                push(&mut cfg, wb);
                push(
                    &mut cfg,
                    InstanceConfig::new("print", format!("WhiteBoxAlarm_{tag}"))
                        .with_input_all("a", format!("wb_{tag}")),
                );
            }
        }

        cfg
    }

    /// Builds a runnable deployment over `cluster`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildDagError`] when DAG construction fails (which for a
    /// generated configuration indicates option/model inconsistency, e.g.
    /// fewer than three slaves for peer comparison).
    pub fn deploy(self, cluster: Cluster) -> Result<Deployment, BuildDagError> {
        let n_nodes = cluster.n_slaves();
        let node_names: Vec<String> = (0..n_nodes)
            .map(|i| cluster.slave_name(i).to_owned())
            .collect();
        let handle = ClusterHandle::new(cluster);
        let mut registry = ModuleRegistry::new();
        asdf_modules::register_all(&mut registry, handle.clone());
        let config = self.config_with_names(&node_names);
        let dag = Dag::build(&registry, &config)?;
        let mut engine = TickEngine::with_threads(dag, self.options.engine_threads);
        engine.set_batch_size(self.options.batch_size);
        let mut taps = HashMap::new();
        for id in ["bb", "wb_tt", "wb_dn", "mr"] {
            if let Some(tap) = engine.tap(id) {
                taps.insert(id.to_owned(), tap);
            }
        }
        Ok(Deployment {
            engine,
            handle,
            taps,
            node_names,
            config,
            options: self.options,
        })
    }
}

/// A runnable fingerpointing deployment: engine + cluster + analysis taps.
pub struct Deployment {
    /// The deterministic engine executing the DAG.
    pub engine: TickEngine,
    /// Shared handle to the monitored cluster.
    pub handle: ClusterHandle,
    taps: HashMap<String, TapHandle>,
    node_names: Vec<String>,
    config: Config,
    options: AsdfOptions,
}

impl Deployment {
    /// Runs the deployment for `secs` seconds of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if a module fails at runtime — generated pipelines are
    /// expected to be internally consistent.
    pub fn run_for(&mut self, secs: u64) {
        self.engine
            .run_for(TickDuration::from_secs(secs))
            .expect("generated pipeline runs cleanly");
    }

    /// The tap on an analysis instance (`bb`, `wb_tt`, `wb_dn`, `mr`),
    /// when that path was built.
    pub fn tap(&self, id: &str) -> Option<&TapHandle> {
        self.taps.get(id)
    }

    /// Slave hostnames, index-aligned with alarm ports.
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// The deployment's options.
    pub fn options(&self) -> &AsdfOptions {
        &self.options
    }

    /// The generated configuration, rendered in the paper's file dialect.
    pub fn config_text(&self) -> String {
        self.config.render()
    }
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("nodes", &self.node_names.len())
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadoop_sim::cluster::ClusterConfig;

    fn tiny_model() -> BlackBoxModel {
        // 120-dimensional model with two trivial centroids; enough for
        // wiring tests (training quality is covered elsewhere).
        let dim = 120;
        BlackBoxModel {
            stddev: vec![1.0; dim],
            centroids: asdf_modules::kernel::CentroidBlock::from_rows(&[
                vec![0.0; dim],
                vec![5.0; dim],
            ]),
        }
    }

    #[test]
    fn generated_config_is_parseable_and_round_trips() {
        let builder = AsdfBuilder::new(AsdfOptions::default()).with_model(tiny_model());
        let cfg = builder.config(4);
        let text = cfg.render();
        let reparsed: Config = text.parse().expect("generated config parses");
        assert_eq!(cfg, reparsed);
        // Spot-check the paper's structure.
        assert!(cfg.instance("drv").is_some());
        assert!(cfg.instance("onenn2").is_some());
        assert!(cfg.instance("bb").is_some());
        assert!(cfg.instance("wb_tt").is_some());
        assert!(cfg.instance("hl_dn_3").is_some());
        assert!(cfg.instance("BlackBoxAlarm").is_some());
    }

    #[test]
    fn deploy_and_run_both_paths() {
        let cluster = Cluster::new(ClusterConfig::new(4, 5), Vec::new());
        let mut dep = AsdfBuilder::new(AsdfOptions {
            window: 10,
            slide: 10,
            ..AsdfOptions::default()
        })
        .with_model(tiny_model())
        .deploy(cluster)
        .expect("deploys");
        dep.run_for(40);
        assert_eq!(dep.handle.now(), 40);
        // All three analysis taps exist and produced window outputs.
        for id in ["bb", "wb_tt", "wb_dn"] {
            let tap = dep.tap(id).unwrap();
            assert!(!tap.is_empty(), "{id} should emit");
        }
        assert_eq!(dep.node_names().len(), 4);
        assert!(dep.config_text().contains("[analysis_bb]"));
    }

    #[test]
    fn sharded_deployment_matches_serial() {
        let run = |threads: usize| {
            let cluster = Cluster::new(ClusterConfig::new(4, 5), Vec::new());
            let mut dep = AsdfBuilder::new(AsdfOptions {
                window: 10,
                slide: 10,
                engine_threads: threads,
                ..AsdfOptions::default()
            })
            .with_model(tiny_model())
            .deploy(cluster)
            .expect("deploys");
            dep.run_for(40);
            ["bb", "wb_tt", "wb_dn"].map(|id| dep.tap(id).unwrap().drain())
        };
        let serial = run(1);
        assert!(serial.iter().all(|s| !s.is_empty()));
        assert_eq!(serial, run(4));
    }

    #[test]
    fn batched_deployment_matches_per_sample() {
        let run = |batch_size: usize, threads: usize| {
            let cluster = Cluster::new(ClusterConfig::new(4, 5), Vec::new());
            let mut dep = AsdfBuilder::new(AsdfOptions {
                window: 10,
                slide: 10,
                engine_threads: threads,
                batch_size,
                ..AsdfOptions::default()
            })
            .with_model(tiny_model())
            .deploy(cluster)
            .expect("deploys");
            dep.run_for(40);
            ["bb", "wb_tt", "wb_dn"].map(|id| dep.tap(id).unwrap().drain())
        };
        let per_sample = run(1, 1);
        assert!(per_sample.iter().all(|s| !s.is_empty()));
        for batch_size in [7, 64] {
            for threads in [1, 4] {
                assert_eq!(per_sample, run(batch_size, threads));
            }
        }
    }

    #[test]
    fn metric_rank_stage_is_optional_and_emits_rankings() {
        // Default: no mr instance, no tap.
        let dep = AsdfBuilder::new(AsdfOptions {
            window: 5,
            slide: 5,
            ..AsdfOptions::default()
        })
        .with_model(tiny_model())
        .deploy(Cluster::new(ClusterConfig::new(3, 9), Vec::new()))
        .unwrap();
        assert!(dep.tap("mr").is_none());

        let cluster = Cluster::new(ClusterConfig::new(4, 9), Vec::new());
        let mut dep = AsdfBuilder::new(AsdfOptions {
            window: 5,
            slide: 5,
            metric_rank: true,
            rank_top: 3,
            ..AsdfOptions::default()
        })
        .with_model(tiny_model())
        .deploy(cluster)
        .expect("deploys");
        dep.run_for(20);
        let out = dep.tap("mr").unwrap().drain();
        assert!(!out.is_empty(), "metric_rank should emit rankings");
        for e in &out {
            assert!(e.source.name.starts_with("rank"));
            let row = e.sample.value.as_vector().unwrap();
            assert_eq!(row.len(), 6, "top=3 emits [idx, score] * 3");
        }
    }

    #[test]
    fn rack_wiring_is_bitwise_equal_to_flat() {
        // The fleet path (per-rack rack_agg tree-reduce + rack-mode
        // metric_rank) must reproduce the flat wiring's rankings exactly,
        // at any rack count that leaves >= 3 nodes' worth of summaries.
        let run = |racks: usize| {
            let cluster = Cluster::new(ClusterConfig::new(7, 9), Vec::new());
            let mut dep = AsdfBuilder::new(AsdfOptions {
                window: 5,
                slide: 5,
                metric_rank: true,
                rank_top: 3,
                racks,
                ..AsdfOptions::default()
            })
            .with_model(tiny_model())
            .deploy(cluster)
            .expect("deploys");
            dep.run_for(25);
            dep.tap("mr")
                .unwrap()
                .drain()
                .into_iter()
                .map(|e| {
                    (
                        e.source.name.clone(),
                        e.source.origin.clone(),
                        e.sample.timestamp.as_secs(),
                        e.sample.value.as_vector().unwrap().to_vec(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let flat = run(0);
        assert!(!flat.is_empty(), "flat wiring should emit rankings");
        for racks in [2, 3, 7] {
            assert_eq!(flat, run(racks), "racks={racks}");
        }
    }

    #[test]
    fn metric_rank_only_deployment_needs_no_model() {
        // Fleet diagnosis latency benchmarks run just the ranking path;
        // the collector edges are generated without the classifier.
        let cluster = Cluster::new(ClusterConfig::new(6, 9), Vec::new());
        let mut dep = AsdfBuilder::new(AsdfOptions {
            black_box: false,
            white_box: false,
            metric_rank: true,
            window: 5,
            slide: 5,
            racks: 2,
            ..AsdfOptions::default()
        })
        .deploy(cluster)
        .expect("deploys");
        dep.run_for(15);
        assert!(dep.tap("bb").is_none());
        assert!(!dep.tap("mr").unwrap().is_empty());
    }

    #[test]
    fn black_box_only_deployment_has_no_wb_taps() {
        let cluster = Cluster::new(ClusterConfig::new(3, 6), Vec::new());
        let dep = AsdfBuilder::new(AsdfOptions {
            white_box: false,
            window: 5,
            slide: 5,
            ..AsdfOptions::default()
        })
        .with_model(tiny_model())
        .deploy(cluster)
        .unwrap();
        assert!(dep.tap("bb").is_some());
        assert!(dep.tap("wb_tt").is_none());
        assert!(dep.tap("wb_dn").is_none());
    }

    #[test]
    fn white_box_only_deployment_needs_no_model() {
        let cluster = Cluster::new(ClusterConfig::new(3, 7), Vec::new());
        let mut dep = AsdfBuilder::new(AsdfOptions {
            black_box: false,
            window: 5,
            slide: 5,
            ..AsdfOptions::default()
        })
        .deploy(cluster)
        .unwrap();
        dep.run_for(15);
        assert!(dep.tap("bb").is_none());
        assert!(!dep.tap("wb_tt").unwrap().is_empty());
    }

    #[test]
    fn too_few_slaves_fails_to_deploy() {
        let cluster = Cluster::new(ClusterConfig::new(2, 8), Vec::new());
        let err = AsdfBuilder::new(AsdfOptions::default())
            .with_model(tiny_model())
            .deploy(cluster);
        assert!(err.is_err(), "peer comparison needs >= 3 nodes");
    }
}
