//! Experiment campaigns reproducing the paper's evaluation (§4.7–4.9).
//!
//! The protocol mirrors the paper:
//!
//! 1. **Training**: fault-free GridMix runs supply the black-box workload
//!    model (log-σ scaling + k-means centroids) — [`train_model`].
//! 2. **Fault-free evaluation**: more fault-free runs, *different seeds*,
//!    provide the false-positive sweeps of Figure 6 — [`fig6a`], [`fig6b`].
//! 3. **Fault injection**: one fault per run, on one node, scored for
//!    balanced accuracy and fingerpointing latency (Figure 7) — [`fig7`].
//!
//! Tables 3 and 4 (collection overhead, RPC bandwidth) are measured by
//! [`table3`] and [`table4`].
//!
//! Runs within a campaign are independent (each builds its own cluster
//! from its own seed), so the drivers fan them out across the
//! [`crate::campaign`] worker pool; [`CampaignConfig::threads`] bounds the
//! pool and results are byte-identical at any setting.

use std::sync::Arc;

use asdf_modules::training::BlackBoxModel;
use asdf_rpc::daemons::{ClusterHandle, HadoopLogRpcd, LogDaemon, SadcRpcd};
use asdf_rpc::meter::CpuMeter;
use asdf_rpc::BandwidthStats;
use hadoop_sim::cluster::{Cluster, ClusterConfig};
use hadoop_sim::faults::{FaultKind, FaultSpec};

use crate::eval::{AnalysisTrace, Confusion, GroundTruth};
use crate::pipeline::{AsdfBuilder, AsdfOptions};

/// Parameters shared by a whole experiment campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Slave nodes per cluster (paper: 50).
    pub slaves: usize,
    /// Seconds each evaluation run lasts.
    pub run_secs: u64,
    /// When the fault is injected within a faulty run.
    pub injection_at: u64,
    /// Node the fault lands on.
    pub fault_node: usize,
    /// Analysis window in samples (paper: 60).
    pub window: usize,
    /// Workload states for the black-box model (k-means k).
    pub n_states: usize,
    /// Seconds of fault-free training data.
    pub training_secs: u64,
    /// Fault-free evaluation runs for Figure 6 (paper: 3).
    pub fault_free_runs: usize,
    /// Independent injected runs per fault for Figure 7; scores are
    /// averaged (latency over detected runs).
    pub fault_runs: usize,
    /// Black-box L1 threshold for Figure 7 (paper: 60).
    pub bb_threshold: f64,
    /// White-box k for Figure 7 (paper: 3).
    pub wb_k: f64,
    /// Consecutive-window confirmation depth (paper: 3).
    pub consecutive: usize,
    /// Base RNG seed; training, evaluation and fault runs derive distinct
    /// seeds from it.
    pub base_seed: u64,
    /// Worker threads for fanning out independent runs (`0` = all
    /// available parallelism). Campaign output is byte-identical at any
    /// setting; this only changes wall-clock time.
    pub threads: usize,
    /// Engine worker threads sharding each tick *within* a run (`1` =
    /// serial, `0` = all available parallelism). Also byte-identical at
    /// any setting.
    pub engine_threads: usize,
    /// Envelopes accumulated per edge before a batched lane hand-off
    /// within each run (`1` = per-sample). Also byte-identical at any
    /// setting.
    pub batch_size: usize,
    /// The workload driving every cluster in the campaign (training and
    /// evaluation alike).
    pub workload: Workload,
    /// Also run the Orion+-style `metric_rank` stage, populating
    /// [`RunTraces::metric_ranks`].
    pub metric_rank: bool,
    /// Simulator worker shards per cluster (`1` = serial tick loop,
    /// `0` = all available parallelism). Frames and logs are bitwise
    /// identical at any setting; this only changes wall-clock time.
    pub sim_shards: usize,
    /// Rack count for the fleet-scale `metric_rank` path (`0`/`1` = flat
    /// per-node wiring). Rankings are bitwise identical at any setting.
    pub racks: usize,
}

/// The workload a campaign drives its clusters with.
#[derive(Debug, Clone, Default)]
pub enum Workload {
    /// GridMix synthesis seeded per run (the paper's setup).
    #[default]
    GridMix,
    /// Deterministic replay of a parsed job trace
    /// (see [`hadoop_sim::trace`]).
    Trace(Arc<hadoop_sim::Trace>),
}

impl Workload {
    /// A short label for reports and benchmark rows.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::GridMix => "gridmix",
            Workload::Trace(_) => "trace",
        }
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            slaves: 20,
            run_secs: 1800,
            injection_at: 600,
            fault_node: 7,
            window: 60,
            n_states: 12,
            training_secs: 900,
            fault_free_runs: 3,
            fault_runs: 3,
            bb_threshold: 40.0,
            wb_k: 3.0,
            consecutive: 3,
            base_seed: 1,
            threads: 0,
            engine_threads: 1,
            batch_size: 64,
            workload: Workload::GridMix,
            metric_rank: false,
            sim_shards: 1,
            racks: 0,
        }
    }
}

impl CampaignConfig {
    /// A small, fast configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        CampaignConfig {
            slaves: 10,
            run_secs: 960,
            injection_at: 300,
            fault_node: 4,
            window: 60,
            n_states: 12,
            training_secs: 600,
            fault_free_runs: 1,
            fault_runs: 1,
            bb_threshold: 50.0,
            wb_k: 3.0,
            consecutive: 2,
            base_seed: 11,
            threads: 0,
            engine_threads: 1,
            batch_size: 64,
            workload: Workload::GridMix,
            metric_rank: false,
            sim_shards: 1,
            racks: 0,
        }
    }

    fn options(&self) -> AsdfOptions {
        AsdfOptions {
            window: self.window,
            slide: self.window,
            bb_threshold: self.bb_threshold,
            wb_k: self.wb_k,
            consecutive: self.consecutive,
            black_box: true,
            white_box: true,
            metric_rank: self.metric_rank,
            rank_top: 5,
            engine_threads: self.engine_threads,
            batch_size: self.batch_size,
            racks: self.racks,
        }
    }

    /// The cluster configuration for one run: the campaign's workload over
    /// `self.slaves` nodes, seeded by `seed`.
    fn cluster_config(&self, seed: u64) -> ClusterConfig {
        let mut cc = ClusterConfig::new(self.slaves, seed);
        cc.sim_shards = self.sim_shards;
        if let Workload::Trace(trace) = &self.workload {
            cc.trace = Some(Arc::clone(trace));
        }
        cc
    }
}

/// Trains the black-box workload model on a fault-free run.
///
/// Every node contributes one flattened metric vector per second. The
/// model is returned behind an [`Arc`] so campaign workers share one copy
/// instead of cloning the centroid matrix per run.
pub fn train_model(cfg: &CampaignConfig) -> Arc<BlackBoxModel> {
    let mut cluster = Cluster::new(cfg.cluster_config(cfg.base_seed ^ 0x7e57_7e57), Vec::new());
    let mut samples: Vec<Vec<f64>> = Vec::new();
    for _ in 0..cfg.training_secs {
        cluster.tick();
        for node in 0..cfg.slaves {
            if let Some(frame) = cluster.latest_frame(node) {
                samples.push(frame.flatten());
            }
        }
    }
    Arc::new(BlackBoxModel::fit(&samples, cfg.n_states, cfg.base_seed))
}

/// The analysis traces of one evaluation run.
#[derive(Debug, Clone)]
pub struct RunTraces {
    /// Black-box trace (score = L1 distance).
    pub bb: AnalysisTrace,
    /// White-box trace, TaskTracker and DataNode paths merged
    /// (score = critical k).
    pub wb: AnalysisTrace,
    /// What was injected.
    pub truth: GroundTruth,
    /// Final per-node metric rankings `(metric index, deviation score)`,
    /// most deviant first — populated when the campaign enables
    /// [`CampaignConfig::metric_rank`].
    pub metric_ranks: Option<Vec<Vec<(usize, f64)>>>,
}

impl RunTraces {
    /// The combined black-box + white-box verdicts (alarm OR), the paper's
    /// "all" series in Figure 7.
    pub fn combined_alarms(&self) -> (Vec<Vec<bool>>, Vec<u64>) {
        let n = self.bb.n_windows().min(self.wb.n_windows());
        let alarms = (0..n)
            .map(|w| {
                self.bb.alarms[w]
                    .iter()
                    .zip(&self.wb.alarms[w])
                    .map(|(a, b)| *a || *b)
                    .collect()
            })
            .collect();
        (alarms, self.bb.window_times[..n].to_vec())
    }
}

/// Runs one evaluation: deploys both analysis paths over a fresh cluster,
/// optionally injecting `fault`, and extracts the traces.
pub fn run_once(
    cfg: &CampaignConfig,
    model: &Arc<BlackBoxModel>,
    fault: Option<FaultKind>,
    seed: u64,
) -> RunTraces {
    let faults: Vec<FaultSpec> = fault
        .map(|kind| {
            vec![FaultSpec {
                node: cfg.fault_node,
                kind,
                start_at: cfg.injection_at,
            }]
        })
        .unwrap_or_default();
    let truth = match fault {
        Some(_) => GroundTruth {
            culprit: Some(cfg.fault_node),
            injected_at: cfg.injection_at,
        },
        None => GroundTruth::fault_free(),
    };
    let cluster = Cluster::new(cfg.cluster_config(seed), faults);
    let mut dep = AsdfBuilder::new(cfg.options())
        .with_model(Arc::clone(model))
        .deploy(cluster)
        .expect("campaign pipeline deploys");
    dep.run_for(cfg.run_secs);

    // One envelope buffer serves all three taps (drain_into reuses its
    // capacity), instead of three fresh allocations per campaign run.
    let mut buf = Vec::new();
    let mut trace = |id: &str, score: &str| {
        buf.clear();
        dep.tap(id).expect("analysis tap").drain_into(&mut buf);
        AnalysisTrace::from_envelopes(&buf, cfg.slaves, score)
    };
    let bb = trace("bb", "dist");
    let wb_tt = trace("wb_tt", "kcrit");
    let wb_dn = trace("wb_dn", "kcrit");
    let metric_ranks = dep.tap("mr").map(|tap| {
        // Keep each node's *last* ranking: the window nearest the end of
        // the run, where the fault has had the longest exposure.
        let mut last: Vec<Vec<(usize, f64)>> = vec![Vec::new(); cfg.slaves];
        for env in tap.drain() {
            let Some(node) = env
                .source
                .name
                .strip_prefix("rank")
                .and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            let row = env.sample.value.as_vector().expect("rank rows are vectors");
            last[node] = row.chunks_exact(2).map(|p| (p[0] as usize, p[1])).collect();
        }
        last
    });
    RunTraces {
        bb,
        wb: wb_tt.merge_max(&wb_dn),
        truth,
        metric_ranks,
    }
}

/// Figure 6(a): black-box false-positive rate vs L1 threshold, over
/// fault-free runs.
///
/// Returns `(threshold, FP rate percent)` pairs.
pub fn fig6a(
    cfg: &CampaignConfig,
    model: &Arc<BlackBoxModel>,
    thresholds: &[f64],
) -> Vec<(f64, f64)> {
    let traces = fault_free_traces(cfg, model);
    thresholds
        .iter()
        .map(|&th| {
            let mut agg = Confusion::default();
            for tr in &traces {
                let flags = tr.bb.reflag(|d| d > th, cfg.consecutive);
                let c = Confusion::tally(&flags, &tr.bb.window_times, GroundTruth::fault_free());
                agg.fp += c.fp;
                agg.tn += c.tn;
            }
            (th, agg.fpr() * 100.0)
        })
        .collect()
}

/// Figure 6(b): white-box false-positive rate vs threshold multiplier k,
/// over fault-free runs.
///
/// Returns `(k, FP rate percent)` pairs.
pub fn fig6b(cfg: &CampaignConfig, model: &Arc<BlackBoxModel>, ks: &[f64]) -> Vec<(f64, f64)> {
    let traces = fault_free_traces(cfg, model);
    ks.iter()
        .map(|&k| {
            let mut agg = Confusion::default();
            for tr in &traces {
                // Node flagged iff k < k_crit.
                let flags = tr.wb.reflag(|kcrit| k < kcrit, cfg.consecutive);
                let c = Confusion::tally(&flags, &tr.wb.window_times, GroundTruth::fault_free());
                agg.fp += c.fp;
                agg.tn += c.tn;
            }
            (k, agg.fpr() * 100.0)
        })
        .collect()
}

fn fault_free_traces(cfg: &CampaignConfig, model: &Arc<BlackBoxModel>) -> Vec<RunTraces> {
    crate::campaign::run_indexed(cfg.fault_free_runs, cfg.threads, |i| {
        run_once(cfg, model, None, cfg.base_seed + 1000 + i as u64)
    })
}

/// One fault's scores for Figure 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultResult {
    /// The injected fault.
    pub fault: FaultKind,
    /// Balanced accuracy of the black-box path (percent).
    pub ba_black_box: f64,
    /// Balanced accuracy of the white-box path (percent).
    pub ba_white_box: f64,
    /// Balanced accuracy of the combined verdicts (percent).
    pub ba_combined: f64,
    /// Black-box fingerpointing latency, seconds (None = never detected).
    pub lat_black_box: Option<u64>,
    /// White-box fingerpointing latency, seconds.
    pub lat_white_box: Option<u64>,
    /// Combined fingerpointing latency, seconds.
    pub lat_combined: Option<u64>,
}

/// Figure 7: balanced accuracy (a) and fingerpointing latency (b) per
/// injected fault, for the black-box, white-box, and combined analyses.
///
/// Each fault is injected in [`CampaignConfig::fault_runs`] independent
/// runs; balanced accuracies are averaged, latencies averaged over the
/// runs that detected the culprit.
pub fn fig7(cfg: &CampaignConfig, model: &Arc<BlackBoxModel>) -> Vec<FaultResult> {
    // Every (fault, repetition) pair is an independent job; flattening the
    // two loops into one job list keeps all workers busy even when
    // fault_runs is small. Seeds depend only on the pair's indices, and
    // results come back in job order, so the averaged rows are identical
    // to the serial nested loops.
    let per_fault = cfg.fault_runs.max(1);
    let scored = crate::campaign::run_indexed(FaultKind::ALL.len() * per_fault, cfg.threads, |j| {
        let (i, r) = (j / per_fault, j % per_fault);
        let fault = FaultKind::ALL[i];
        let seed = cfg.base_seed + 2000 + i as u64 + 100 * r as u64;
        let tr = run_once(cfg, model, Some(fault), seed);
        score_run(&tr, fault)
    });
    FaultKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &fault)| average_results(fault, &scored[i * per_fault..(i + 1) * per_fault]))
        .collect()
}

/// Averages per-run scores into one Figure-7 row.
///
/// Balanced accuracies are arithmetic means over all runs. Latencies are
/// averaged over the runs that detected the culprit and rounded to the
/// nearest whole second (half-up), since window times are whole seconds.
fn average_results(fault: FaultKind, runs: &[FaultResult]) -> FaultResult {
    let n = runs.len().max(1) as f64;
    let mean = |f: fn(&FaultResult) -> f64| runs.iter().map(f).sum::<f64>() / n;
    let mean_lat = |f: fn(&FaultResult) -> Option<u64>| {
        let hits: Vec<u64> = runs.iter().filter_map(f).collect();
        if hits.is_empty() {
            None
        } else {
            Some((hits.iter().sum::<u64>() as f64 / hits.len() as f64).round() as u64)
        }
    };
    FaultResult {
        fault,
        ba_black_box: mean(|r| r.ba_black_box),
        ba_white_box: mean(|r| r.ba_white_box),
        ba_combined: mean(|r| r.ba_combined),
        lat_black_box: mean_lat(|r| r.lat_black_box),
        lat_white_box: mean_lat(|r| r.lat_white_box),
        lat_combined: mean_lat(|r| r.lat_combined),
    }
}

/// Scores one faulty run into a [`FaultResult`].
pub fn score_run(tr: &RunTraces, fault: FaultKind) -> FaultResult {
    use crate::eval::fingerpointing_latency;
    let bb = Confusion::tally(&tr.bb.alarms, &tr.bb.window_times, tr.truth);
    let wb = Confusion::tally(&tr.wb.alarms, &tr.wb.window_times, tr.truth);
    let (all_alarms, all_times) = tr.combined_alarms();
    let all = Confusion::tally(&all_alarms, &all_times, tr.truth);
    FaultResult {
        fault,
        ba_black_box: bb.balanced_accuracy() * 100.0,
        ba_white_box: wb.balanced_accuracy() * 100.0,
        ba_combined: all.balanced_accuracy() * 100.0,
        lat_black_box: fingerpointing_latency(&tr.bb.alarms, &tr.bb.window_times, tr.truth),
        lat_white_box: fingerpointing_latency(&tr.wb.alarms, &tr.wb.window_times, tr.truth),
        lat_combined: fingerpointing_latency(&all_alarms, &all_times, tr.truth),
    }
}

/// One row of an ablation sweep: one parameter setting, scored on a fault
/// run plus a fault-free run.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The parameter being swept.
    pub parameter: &'static str,
    /// The value of that parameter for this row.
    pub value: f64,
    /// Combined balanced accuracy on the injected run (percent).
    pub ba_combined: f64,
    /// Combined fingerpointing latency on the injected run.
    pub latency: Option<u64>,
    /// Combined false-positive rate on a fault-free run (percent).
    pub fp_rate: f64,
}

/// Which design knob an ablation sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AblationKnob {
    /// Analysis window size, in samples.
    Window,
    /// Consecutive-window confirmation depth.
    Consecutive,
    /// Number of black-box workload states (k-means k).
    NStates,
}

impl AblationKnob {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AblationKnob::Window => "window",
            AblationKnob::Consecutive => "consecutive",
            AblationKnob::NStates => "n_states",
        }
    }
}

/// Ablation of one design choice: reruns the pipeline on `fault` (plus a
/// fault-free control) at each value of the knob, holding everything else
/// at the campaign defaults.
///
/// This quantifies the detection-latency/accuracy/false-positive trade-offs
/// behind the paper's windowSize = 60 and 3-consecutive-window choices, and
/// behind this reproduction's workload-state count.
pub fn ablate(
    cfg: &CampaignConfig,
    knob: AblationKnob,
    values: &[f64],
    fault: FaultKind,
) -> Vec<AblationRow> {
    // Each knob value retrains and reruns from scratch, so rows are
    // independent jobs for the worker pool.
    crate::campaign::run_indexed(values.len(), cfg.threads, |vi| {
        let value = values[vi];
        let mut c = cfg.clone();
        match knob {
            AblationKnob::Window => c.window = value as usize,
            AblationKnob::Consecutive => c.consecutive = value as usize,
            AblationKnob::NStates => c.n_states = value as usize,
        }
        // n_states changes require retraining; for uniformity every row
        // retrains (training is cheap at these scales).
        let model = train_model(&c);
        let faulty = run_once(&c, &model, Some(fault), c.base_seed + 9000);
        let clean = run_once(&c, &model, None, c.base_seed + 9500);
        let (alarms, times) = faulty.combined_alarms();
        let conf = Confusion::tally(&alarms, &times, faulty.truth);
        let (clean_alarms, clean_times) = clean.combined_alarms();
        let clean_conf = Confusion::tally(&clean_alarms, &clean_times, GroundTruth::fault_free());
        AblationRow {
            parameter: knob.name(),
            value,
            ba_combined: conf.balanced_accuracy() * 100.0,
            latency: crate::eval::fingerpointing_latency(&alarms, &times, faulty.truth),
            fp_rate: clean_conf.fpr() * 100.0,
        }
    })
}

/// One row of Table 3: measured cost of a collection component.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Component name.
    pub process: &'static str,
    /// Percent of one core's time consumed per monitored second.
    pub cpu_percent: f64,
    /// Approximate resident memory, MB.
    pub memory_mb: f64,
}

/// Table 3: CPU and memory cost of the collection daemons and of the
/// analysis core, measured on this machine against a live simulated node.
pub fn table3(seconds: u64) -> Vec<OverheadRow> {
    let slaves = 5;
    // CPU-time metering reads /proc/self/stat, whose resolution is one
    // jiffy (10 ms); individual polls cost microseconds, so each component
    // is metered around a whole polling loop and the bare simulation cost
    // (measured on an identical cluster/seed) is subtracted.
    let sim_only = {
        let mut cluster = Cluster::new(ClusterConfig::new(slaves, 7), Vec::new());
        let m = CpuMeter::start();
        cluster.advance(seconds);
        m.elapsed_cpu()
    };

    // Collector polls cost microseconds each, far below one jiffy, so
    // they are metered over a large number of repetitions: every slave is
    // polled `REPS` times per simulated second, and the cost is divided
    // back down to the real one-poll-per-second rate.
    const REPS: usize = 20;
    let sadc_cpu = {
        let handle = ClusterHandle::new(Cluster::new(ClusterConfig::new(slaves, 7), Vec::new()));
        let mut daemons: Vec<SadcRpcd> = (0..slaves)
            .map(|n| SadcRpcd::connect(handle.clone(), n).expect("connect"))
            .collect();
        let m = CpuMeter::start();
        for _ in 0..seconds {
            handle.tick();
            for d in &mut daemons {
                for _ in 0..REPS {
                    d.poll().expect("poll");
                }
            }
        }
        (m.elapsed_cpu() - sim_only).max(0.0) / (slaves * REPS) as f64
    };

    let hl_cpu = {
        let handle = ClusterHandle::new(Cluster::new(ClusterConfig::new(slaves, 7), Vec::new()));
        let mut tts: Vec<HadoopLogRpcd> = (0..slaves)
            .map(|n| {
                HadoopLogRpcd::connect(handle.clone(), n, LogDaemon::TaskTracker).expect("connect")
            })
            .collect();
        let mut dns: Vec<HadoopLogRpcd> = (0..slaves)
            .map(|n| {
                HadoopLogRpcd::connect(handle.clone(), n, LogDaemon::DataNode).expect("connect")
            })
            .collect();
        let m = CpuMeter::start();
        for _ in 0..seconds {
            handle.tick();
            for (tt, dn) in tts.iter_mut().zip(&mut dns) {
                // The first poll of the second drains and parses the new
                // log lines; the repetitions re-measure the sample/encode
                // path, which dominates.
                for _ in 0..REPS {
                    tt.poll().expect("poll");
                    dn.poll().expect("poll");
                }
            }
        }
        (m.elapsed_cpu() - sim_only).max(0.0) / (slaves * REPS) as f64
    };

    // fpt-core: a full two-path deployment on the same cluster; charge
    // everything but the simulation and the per-node collectors.
    let model = {
        let cfg = CampaignConfig {
            slaves,
            training_secs: 120,
            n_states: 4,
            base_seed: 9,
            ..CampaignConfig::smoke()
        };
        train_model(&cfg)
    };
    let full = {
        let cluster = Cluster::new(ClusterConfig::new(slaves, 7), Vec::new());
        let mut dep = AsdfBuilder::new(AsdfOptions {
            window: 30,
            slide: 30,
            ..AsdfOptions::default()
        })
        .with_model(model)
        .deploy(cluster)
        .expect("deploys");
        let m = CpuMeter::start();
        dep.run_for(seconds);
        m.elapsed_cpu()
    };
    let collectors_all_nodes = (sadc_cpu + hl_cpu) * slaves as f64;
    let fpt_cpu =
        ((full - sim_only - collectors_all_nodes) / seconds as f64 / slaves as f64).max(0.0);

    // Memory: steady-state size of each component's working state.
    let sadc_mem = approx_retained_mb(|| {
        let h = ClusterHandle::new(Cluster::new(ClusterConfig::new(2, 1), Vec::new()));
        Box::new(SadcRpcd::connect(h, 0).expect("connect"))
    });
    let hl_mem = approx_retained_mb(|| {
        let h = ClusterHandle::new(Cluster::new(ClusterConfig::new(2, 1), Vec::new()));
        Box::new(HadoopLogRpcd::connect(h, 0, LogDaemon::TaskTracker).expect("connect"))
    });

    vec![
        OverheadRow {
            process: "hadoop_log_rpcd",
            cpu_percent: hl_cpu / seconds as f64 * 100.0,
            memory_mb: hl_mem,
        },
        OverheadRow {
            process: "sadc_rpcd",
            cpu_percent: sadc_cpu / seconds as f64 * 100.0,
            memory_mb: sadc_mem,
        },
        OverheadRow {
            process: "fpt-core (per monitored node)",
            cpu_percent: fpt_cpu * 100.0,
            memory_mb: crate::report::FPT_CORE_STATE_MB,
        },
    ]
}

/// Rough retained-memory estimate for a component: RSS growth across
/// constructing many instances, averaged. Coarse (allocator slack is
/// included) but measured, not asserted.
fn approx_retained_mb(make: impl Fn() -> Box<dyn std::any::Any>) -> f64 {
    const N: usize = 32;
    let before = asdf_rpc::meter::process_rss_mb().unwrap_or(0.0);
    let kept: Vec<_> = (0..N).map(|_| make()).collect();
    let after = asdf_rpc::meter::process_rss_mb().unwrap_or(before);
    drop(kept);
    ((after - before) / N as f64).max(0.1)
}

/// Result of the ASDF-on-ASDF self-overhead measurement: the same
/// evaluation workload timed with the observability layer enabled and
/// disabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfOverhead {
    /// Representative wall-clock with instrumentation enabled, seconds:
    /// [`off_secs`](Self::off_secs) plus the median paired on−off delta.
    pub on_secs: f64,
    /// Median wall-clock with instrumentation disabled, seconds.
    pub off_secs: f64,
}

impl SelfOverhead {
    /// Overhead as a percentage of the uninstrumented wall-clock, clamped
    /// at zero (scheduler jitter can make an "on" rep beat an "off" rep).
    pub fn overhead_pct(&self) -> f64 {
        if self.off_secs <= 0.0 {
            return 0.0;
        }
        ((self.on_secs - self.off_secs) / self.off_secs * 100.0).max(0.0)
    }
}

/// Measures the wall-clock cost of the always-on instrumentation by
/// running one injected evaluation run with the `asdf-obs` layer enabled
/// vs disabled, `reps` *pairs* of back-to-back runs.
///
/// Adjacent runs share the machine's momentary noise regime (frequency
/// state, background load), so the paired on−off delta isolates the
/// instrumentation; the pair order alternates every rep so warm-up and
/// drift cancel, and the median over pairs shrugs off noise bursts that
/// defeat a min-of-reps comparison. Restores the previous enabled state
/// before returning.
pub fn self_overhead(cfg: &CampaignConfig, reps: usize) -> SelfOverhead {
    let model = train_model(cfg);
    let workload = || {
        let t0 = std::time::Instant::now();
        let tr = run_once(cfg, &model, Some(FaultKind::Hadoop1036), cfg.base_seed + 77);
        std::hint::black_box(&tr);
        t0.elapsed().as_secs_f64()
    };
    let timed = |on: bool| {
        asdf_obs::set_enabled(on);
        workload()
    };
    // Warm caches and the allocator with one untimed run.
    workload();

    let was_enabled = asdf_obs::enabled();
    let mut deltas = Vec::with_capacity(reps);
    let mut offs = Vec::with_capacity(reps);
    for r in 0..reps.max(1) {
        let (on, off) = if r % 2 == 0 {
            let on = timed(true);
            (on, timed(false))
        } else {
            let off = timed(false);
            (timed(true), off)
        };
        deltas.push(on - off);
        offs.push(off);
    }
    asdf_obs::set_enabled(was_enabled);
    let off_secs = median(&mut offs);
    SelfOverhead {
        on_secs: off_secs + median(&mut deltas),
        off_secs,
    }
}

/// Median of a sample (mean of the middle two when even-sized).
fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = v.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// One row of Table 4: RPC bandwidth of a collector type.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthRow {
    /// RPC type name, matching the paper's rows.
    pub rpc_type: &'static str,
    /// Static connection overhead, kB.
    pub static_kb: f64,
    /// Per-iteration bandwidth, kB/s.
    pub per_iter_kb: f64,
}

/// Table 4: per-node RPC bandwidth for the three collector types, measured
/// over `seconds` one-second collection iterations.
pub fn table4(seconds: u64) -> Vec<BandwidthRow> {
    let handle = ClusterHandle::new(Cluster::new(ClusterConfig::new(3, 21), Vec::new()));
    let mut sadc = SadcRpcd::connect(handle.clone(), 0).expect("connect");
    let mut hl_dn =
        HadoopLogRpcd::connect(handle.clone(), 0, LogDaemon::DataNode).expect("connect");
    let mut hl_tt =
        HadoopLogRpcd::connect(handle.clone(), 0, LogDaemon::TaskTracker).expect("connect");
    for _ in 0..seconds {
        handle.tick();
        sadc.poll().expect("poll");
        hl_dn.poll().expect("poll");
        hl_tt.poll().expect("poll");
    }
    let row = |name, bw: BandwidthStats| BandwidthRow {
        rpc_type: name,
        static_kb: bw.static_kb(),
        per_iter_kb: bw.per_iteration_kb(),
    };
    let s = row("sadc-tcp", sadc.bandwidth());
    let d = row("hl-dn-tcp", hl_dn.bandwidth());
    let t = row("hl-tt-tcp", hl_tt.bandwidth());
    let sum = BandwidthRow {
        rpc_type: "TCP Sum",
        static_kb: s.static_kb + d.static_kb + t.static_kb,
        per_iter_kb: s.per_iter_kb + d.per_iter_kb + t.per_iter_kb,
    };
    vec![s, d, t, sum]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_produces_a_usable_model() {
        let cfg = CampaignConfig::smoke();
        let model = train_model(&cfg);
        assert_eq!(model.n_states(), cfg.n_states);
        assert_eq!(model.stddev.len(), 120);
        // The model classifies an arbitrary frame without panicking.
        let idx = model.classify(&vec![1.0; 120]);
        assert!(idx < cfg.n_states);
    }

    #[test]
    fn fault_free_run_has_low_false_positive_rate_at_paper_threshold() {
        let cfg = CampaignConfig::smoke();
        let model = train_model(&cfg);
        let tr = run_once(&cfg, &model, None, cfg.base_seed + 500);
        assert!(tr.bb.n_windows() >= 5, "windows: {}", tr.bb.n_windows());
        let c = Confusion::tally(&tr.bb.alarms, &tr.bb.window_times, tr.truth);
        assert!(c.fpr() < 0.25, "bb fpr {}", c.fpr());
        let c = Confusion::tally(&tr.wb.alarms, &tr.wb.window_times, tr.truth);
        assert!(c.fpr() < 0.25, "wb fpr {}", c.fpr());
    }

    #[test]
    fn hung_maps_are_localized_at_smoke_scale() {
        // HADOOP-1036 is the most strongly-manifesting fault; it must be
        // localized even at the small smoke scale. (The subtler faults —
        // CPUHog and friends — are evaluated at full scale by the fig7
        // campaign binaries.)
        let cfg = CampaignConfig::smoke();
        let model = train_model(&cfg);
        let tr = run_once(
            &cfg,
            &model,
            Some(FaultKind::Hadoop1036),
            cfg.base_seed + 600,
        );
        let r = score_run(&tr, FaultKind::Hadoop1036);
        assert!(
            r.ba_combined > 60.0,
            "combined BA should beat chance: {r:?}"
        );
        assert!(
            r.lat_combined.is_some(),
            "hung maps should be fingerpointed: {r:?}"
        );
    }

    #[test]
    fn fig6_sweeps_are_monotone_in_the_expected_direction() {
        let cfg = CampaignConfig::smoke();
        let model = train_model(&cfg);
        let sweep = fig6a(&cfg, &model, &[0.0, 20.0, 60.0]);
        assert_eq!(sweep.len(), 3);
        // FP rate is non-increasing in the threshold.
        assert!(
            sweep[0].1 >= sweep[1].1 && sweep[1].1 >= sweep[2].1,
            "{sweep:?}"
        );
        // At threshold 0 everything beyond warmup is anomalous.
        assert!(sweep[0].1 > 50.0, "{sweep:?}");

        let sweep = fig6b(&cfg, &model, &[0.0, 2.0, 5.0]);
        assert!(sweep[0].1 >= sweep[2].1, "{sweep:?}");
    }

    #[test]
    fn table4_reports_plausible_bandwidths() {
        let rows = table4(30);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3].rpc_type, "TCP Sum");
        let sum: f64 = rows[..3].iter().map(|r| r.per_iter_kb).sum();
        assert!((rows[3].per_iter_kb - sum).abs() < 1e-9);
        // sadc dominates, as in the paper.
        assert!(rows[0].per_iter_kb > rows[1].per_iter_kb);
        assert!(rows[0].per_iter_kb > rows[2].per_iter_kb);
    }
}
