//! Evaluation metrics: false-positive rate, balanced accuracy, and
//! fingerpointing latency (paper §4.6).
//!
//! The unit of evaluation is the *node-window*: each analysis window
//! produces one verdict per node. Ground truth labels a node-window
//! problematic when it belongs to the injected culprit node at or after
//! the injection time — deliberately including the dormant period of
//! HADOOP-1152/2080, exactly as the paper does (which is why those faults
//! score lower).

use asdf_core::module::Envelope;

/// Per-window, per-node output of one analysis instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisTrace {
    /// Evaluation timestamps (window ends), ascending.
    pub window_times: Vec<u64>,
    /// `scores[w][n]`: the raw sweepable score of node `n` in window `w`
    /// (L1 distance for the black-box path, critical-k for the white-box
    /// path).
    pub scores: Vec<Vec<f64>>,
    /// `alarms[w][n]`: the module's own gated alarm verdicts.
    pub alarms: Vec<Vec<bool>>,
}

impl AnalysisTrace {
    /// Number of evaluation windows.
    pub fn n_windows(&self) -> usize {
        self.window_times.len()
    }

    /// Extracts a trace from a tapped analysis instance's envelopes.
    ///
    /// `score_prefix` selects the diagnostic ports (`dist` for
    /// `analysis_bb`, `kcrit` for `analysis_wb`).
    ///
    /// # Panics
    ///
    /// Panics if the envelopes are not the well-formed output of one
    /// analysis instance (mismatched ports or types).
    pub fn from_envelopes(envelopes: &[Envelope], n_nodes: usize, score_prefix: &str) -> Self {
        use std::collections::BTreeMap;
        /// Partially-assembled row: per-node scores and alarms.
        type PartialRow = (Vec<Option<f64>>, Vec<Option<bool>>);
        let mut by_time: BTreeMap<u64, PartialRow> = BTreeMap::new();
        for env in envelopes {
            let name = &env.source.name;
            let t = env.sample.timestamp.as_secs();
            let entry = by_time
                .entry(t)
                .or_insert_with(|| (vec![None; n_nodes], vec![None; n_nodes]));
            if let Some(idx) = name.strip_prefix("alarm") {
                let idx: usize = idx.parse().expect("alarm port index");
                entry.1[idx] = Some(env.sample.value.as_bool().expect("alarm is bool"));
            } else if let Some(idx) = name.strip_prefix(score_prefix) {
                let idx: usize = idx.parse().expect("score port index");
                entry.0[idx] = Some(env.sample.value.as_float().expect("score is numeric"));
            }
        }
        let mut trace = AnalysisTrace::default();
        for (t, (scores, alarms)) in by_time {
            // Skip partial rows (can only happen on truncated taps).
            if scores.iter().any(Option::is_none) || alarms.iter().any(Option::is_none) {
                continue;
            }
            trace.window_times.push(t);
            trace
                .scores
                .push(scores.into_iter().map(Option::unwrap).collect());
            trace
                .alarms
                .push(alarms.into_iter().map(Option::unwrap).collect());
        }
        trace
    }

    /// Merges two traces window-by-window, keeping the max score and
    /// OR-ing alarms (used to combine the TaskTracker and DataNode
    /// white-box analyses, and the black-box/white-box combination).
    ///
    /// Extra trailing windows in the longer trace are dropped.
    #[must_use]
    pub fn merge_max(&self, other: &AnalysisTrace) -> AnalysisTrace {
        let n = self.n_windows().min(other.n_windows());
        let mut out = AnalysisTrace::default();
        for w in 0..n {
            out.window_times
                .push(self.window_times[w].max(other.window_times[w]));
            out.scores.push(
                self.scores[w]
                    .iter()
                    .zip(&other.scores[w])
                    .map(|(a, b)| a.max(*b))
                    .collect(),
            );
            out.alarms.push(
                self.alarms[w]
                    .iter()
                    .zip(&other.alarms[w])
                    .map(|(a, b)| *a || *b)
                    .collect(),
            );
        }
        out
    }

    /// Re-derives gated alarm verdicts from the raw scores with a
    /// different threshold — what lets one run serve a whole
    /// threshold-sweep figure.
    ///
    /// A node-window is anomalous when `is_anomalous(score)`; the alarm
    /// fires after `consecutive` anomalous windows in a row.
    pub fn reflag(&self, is_anomalous: impl Fn(f64) -> bool, consecutive: usize) -> Vec<Vec<bool>> {
        let n_nodes = self.scores.first().map_or(0, Vec::len);
        let mut streak = vec![0usize; n_nodes];
        let mut out = Vec::with_capacity(self.n_windows());
        for row in &self.scores {
            let mut flags = Vec::with_capacity(n_nodes);
            for (node, &score) in row.iter().enumerate() {
                if is_anomalous(score) {
                    streak[node] += 1;
                } else {
                    streak[node] = 0;
                }
                flags.push(streak[node] >= consecutive);
            }
            out.push(flags);
        }
        out
    }
}

/// What was actually injected, for scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruth {
    /// The culprit node, or `None` for a fault-free run.
    pub culprit: Option<usize>,
    /// Injection time in cluster seconds (ignored when fault-free).
    pub injected_at: u64,
}

impl GroundTruth {
    /// A fault-free run.
    pub fn fault_free() -> Self {
        GroundTruth {
            culprit: None,
            injected_at: 0,
        }
    }

    /// Whether node `node` is problematic in the window ending at `t`.
    pub fn is_problem(&self, node: usize, t: u64) -> bool {
        self.culprit == Some(node) && t >= self.injected_at
    }
}

/// Counts of the four verdict outcomes over node-windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Problematic node-windows flagged.
    pub tp: u64,
    /// Problem-free node-windows flagged.
    pub fp: u64,
    /// Problem-free node-windows not flagged.
    pub tn: u64,
    /// Problematic node-windows not flagged.
    pub fn_: u64,
}

impl Confusion {
    /// Tallies verdicts against ground truth.
    pub fn tally(alarms: &[Vec<bool>], window_times: &[u64], truth: GroundTruth) -> Self {
        let mut c = Confusion::default();
        for (row, &t) in alarms.iter().zip(window_times) {
            for (node, &flagged) in row.iter().enumerate() {
                match (truth.is_problem(node, t), flagged) {
                    (true, true) => c.tp += 1,
                    (true, false) => c.fn_ += 1,
                    (false, true) => c.fp += 1,
                    (false, false) => c.tn += 1,
                }
            }
        }
        c
    }

    /// True-positive rate (0 when no problematic windows exist).
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// True-negative rate (0 when no problem-free windows exist).
    pub fn tnr(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// False-positive rate over problem-free node-windows.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Balanced accuracy: the mean of TPR and TNR (paper §4.9: "averages
    /// the probability of correctly identifying problematic and
    /// problem-free windows").
    pub fn balanced_accuracy(&self) -> f64 {
        (self.tpr() + self.tnr()) / 2.0
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Fingerpointing latency: seconds from injection to the first alarm that
/// correctly names the culprit (paper §4.6: "the time interval between the
/// injection of the problem ... and the raising of the corresponding
/// alarm"). `None` when the culprit is never flagged.
pub fn fingerpointing_latency(
    alarms: &[Vec<bool>],
    window_times: &[u64],
    truth: GroundTruth,
) -> Option<u64> {
    let culprit = truth.culprit?;
    for (row, &t) in alarms.iter().zip(window_times) {
        if t >= truth.injected_at && row[culprit] {
            return Some(t - truth.injected_at);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_core::module::OutputMeta;
    use asdf_core::time::Timestamp;
    use asdf_core::value::Sample;
    use std::sync::Arc;

    fn env(port: &str, t: u64, value: asdf_core::value::Value) -> Envelope {
        Envelope {
            source: Arc::new(OutputMeta {
                instance: "bb".into(),
                name: port.into(),
                origin: format!("origin-{port}"),
            }),
            sample: Sample {
                timestamp: Timestamp::from_secs(t),
                value,
            },
        }
    }

    fn trace_2nodes() -> AnalysisTrace {
        let mut envs = Vec::new();
        for (w, t) in [60u64, 120, 180].iter().enumerate() {
            for node in 0..2 {
                let score = if node == 1 && w >= 1 { 80.0 } else { 5.0 };
                envs.push(env(&format!("dist{node}"), *t, score.into()));
                envs.push(env(&format!("alarm{node}"), *t, (score > 60.0).into()));
            }
        }
        AnalysisTrace::from_envelopes(&envs, 2, "dist")
    }

    #[test]
    fn extraction_groups_by_window() {
        let tr = trace_2nodes();
        assert_eq!(tr.window_times, vec![60, 120, 180]);
        assert_eq!(tr.scores[0], vec![5.0, 5.0]);
        assert_eq!(tr.scores[1], vec![5.0, 80.0]);
        assert_eq!(tr.alarms[2], vec![false, true]);
    }

    #[test]
    fn reflag_applies_threshold_and_streak() {
        let tr = trace_2nodes();
        // Threshold 50, consecutive 2: node 1 anomalous at w1, w2 → alarm at w2.
        let flags = tr.reflag(|s| s > 50.0, 2);
        assert_eq!(flags[0], vec![false, false]);
        assert_eq!(flags[1], vec![false, false]);
        assert_eq!(flags[2], vec![false, true]);
        // Threshold 1: everything anomalous; consecutive 1 flags all.
        let flags = tr.reflag(|s| s > 1.0, 1);
        assert!(flags.iter().flatten().all(|&f| f));
    }

    #[test]
    fn confusion_and_balanced_accuracy() {
        let tr = trace_2nodes();
        let truth = GroundTruth {
            culprit: Some(1),
            injected_at: 100,
        };
        // Alarms: node1 flagged at 120 and 180 (problem windows: 120, 180).
        let c = Confusion::tally(&tr.alarms, &tr.window_times, truth);
        assert_eq!((c.tp, c.fn_), (2, 0));
        // Problem-free node-windows: node0 ×3 + node1@60 = 4, none flagged.
        assert_eq!((c.fp, c.tn), (0, 4));
        assert_eq!(c.balanced_accuracy(), 1.0);
        assert_eq!(c.fpr(), 0.0);
    }

    #[test]
    fn missed_detection_halves_balanced_accuracy() {
        let alarms = vec![vec![false, false]; 3];
        let times = vec![60, 120, 180];
        let truth = GroundTruth {
            culprit: Some(0),
            injected_at: 0,
        };
        let c = Confusion::tally(&alarms, &times, truth);
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.tnr(), 1.0);
        assert_eq!(c.balanced_accuracy(), 0.5);
    }

    #[test]
    fn latency_measures_from_injection() {
        let tr = trace_2nodes();
        let truth = GroundTruth {
            culprit: Some(1),
            injected_at: 100,
        };
        assert_eq!(
            fingerpointing_latency(&tr.alarms, &tr.window_times, truth),
            Some(20)
        );
        // Never flagged -> None.
        let truth0 = GroundTruth {
            culprit: Some(0),
            injected_at: 100,
        };
        assert_eq!(
            fingerpointing_latency(&tr.alarms, &tr.window_times, truth0),
            None
        );
        // Fault-free -> None.
        assert_eq!(
            fingerpointing_latency(&tr.alarms, &tr.window_times, GroundTruth::fault_free()),
            None
        );
    }

    #[test]
    fn merge_max_combines_paths() {
        let a = trace_2nodes();
        let mut b = trace_2nodes();
        // Make path b see node 0 as the deviant instead.
        for row in &mut b.scores {
            row.swap(0, 1);
        }
        for row in &mut b.alarms {
            row.swap(0, 1);
        }
        let merged = a.merge_max(&b);
        assert_eq!(merged.n_windows(), 3);
        assert_eq!(merged.scores[1], vec![80.0, 80.0]);
        assert_eq!(merged.alarms[2], vec![true, true]);
    }

    #[test]
    fn ground_truth_labels_windows() {
        let t = GroundTruth {
            culprit: Some(2),
            injected_at: 500,
        };
        assert!(!t.is_problem(2, 499));
        assert!(t.is_problem(2, 500));
        assert!(!t.is_problem(1, 600));
        assert!(!GroundTruth::fault_free().is_problem(0, 1000));
    }
}
