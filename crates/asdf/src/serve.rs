//! The long-lived multi-tenant diagnosis daemon behind `asdf serve`.
//!
//! Batch campaigns build a pipeline, drain it, and exit; the paper's
//! deployment model is the opposite — a control node that keeps running
//! while many monitored clusters stream samples at it. [`ServeDaemon`]
//! reproduces that: each monitored cluster is a **tenant** that joins with
//! a versioned wire [`Handshake`], streams `sadc` / `hadoop_log` / `strace`
//! frames over the length-prefixed wire format into a bounded per-tenant
//! ingress queue, and is diagnosed by its own [`OnlineEngine`] (per-tenant
//! DAG, batched RowBlock path) — all inside one process.
//!
//! The serve model handles the messy parts a batch run never sees:
//!
//! * **Backpressure** — each tenant's ingress queue is bounded; a flooding
//!   tenant sheds its *oldest* frames (freshest data wins, per the paper's
//!   online bias) with the drop counted on `rpc.shed_total.<tenant>`.
//!   Queues are per tenant, so one tenant flooding never blocks another.
//! * **Pacing** — tenants replay at `wall_per_tick / speed`; the engine's
//!   ticker tracks its own drift and warns when it has to catch up.
//! * **Join/leave without restart** — tenants are added and removed while
//!   the daemon runs; leaving flushes in-flight envelopes via
//!   [`OnlineEngine::flush_and_stop`] before reporting.
//! * **Isolation** — analysis state, scheduler metrics
//!   (`online.*.<tenant>`), and queue metrics are all per tenant, so a
//!   healthy tenant's alarm stream is bitwise identical to a solo run of
//!   the same frame sequence.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use asdf_core::config::{Config, InstanceConfig};
use asdf_core::dag::Dag;
use asdf_core::error::{BuildDagError, ModuleError, OnlineStartError, RunEngineError};
use asdf_core::module::{Envelope, InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::online::OnlineEngine;
use asdf_core::registry::ModuleRegistry;
use asdf_core::time::{TickDuration, Timestamp};
use asdf_modules::training::BlackBoxModel;
use asdf_rpc::daemons::{ClusterHandle, Collector, HadoopLogRpcd, LogDaemon, SadcRpcd, StraceRpcd};
use asdf_rpc::wire::{Bytes, Handshake, MessageBuilder, MessageReader, WireError};
use hadoop_sim::cluster::{Cluster, ClusterConfig};

/// Stream tag for black-box `sadc` frames.
pub const STREAM_SADC: u8 = 1;
/// Stream tag for white-box TaskTracker `hadoop_log` frames.
pub const STREAM_LOG: u8 = 2;
/// Stream tag for `strace` syscall-count frames.
pub const STREAM_STRACE: u8 = 3;

/// Tunable knobs of the serve daemon, shared by every tenant.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Slave nodes per monitored cluster (paper-style peer comparison
    /// needs at least 3).
    pub slaves: usize,
    /// Wall time one engine second occupies before the speed multiplier.
    pub wall_per_tick: Duration,
    /// Real-time pacing multiplier (1.0 = real time, 2.0 = twice as fast).
    pub speed: f64,
    /// Default ingress-queue capacity, in frames, before shed-oldest.
    pub queue_capacity: usize,
    /// Analysis window, in samples.
    pub window: usize,
    /// Samples between window evaluations.
    pub slide: usize,
    /// Black-box L1 alarm threshold.
    pub threshold: f64,
    /// White-box threshold multiplier k.
    pub wb_k: f64,
    /// Consecutive anomalous windows required before an alarm.
    pub consecutive: usize,
    /// Mailbox coalescing window of each tenant engine.
    pub batch_size: usize,
    /// Build the white-box paths (`hadoop_log` and `strace` streams feed
    /// `mavgvec → analysis_wb`) in addition to the black-box path.
    pub white_box: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            slaves: 4,
            wall_per_tick: Duration::from_secs(1),
            speed: 1.0,
            queue_capacity: 4096,
            window: 60,
            slide: 60,
            threshold: 60.0,
            wb_k: 3.0,
            consecutive: 3,
            batch_size: 64,
            white_box: true,
        }
    }
}

/// Per-tenant workload description supplied at join time.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Simulation seed of the tenant's monitored cluster.
    pub seed: u64,
    /// Number of one-second collection steps the tenant streams. A fixed
    /// count keeps a tenant's frame sequence reproducible, which is what
    /// makes solo and multi-tenant alarm streams comparable bit for bit.
    pub steps: u64,
    /// Stream at maximum rate instead of pacing — a misbehaving tenant
    /// that must be absorbed by shedding, not by slowing anyone down.
    pub flood: bool,
    /// Overrides [`ServeOptions::queue_capacity`] for this tenant.
    pub queue_capacity: Option<usize>,
}

impl TenantSpec {
    /// A paced, well-behaved tenant streaming `steps` collection steps.
    pub fn paced(seed: u64, steps: u64) -> Self {
        TenantSpec {
            seed,
            steps,
            flood: false,
            queue_capacity: None,
        }
    }

    /// A flooding tenant: same workload, no pacing.
    pub fn flooding(seed: u64, steps: u64) -> Self {
        TenantSpec {
            flood: true,
            ..TenantSpec::paced(seed, steps)
        }
    }
}

/// An error from the serve daemon's tenant lifecycle.
#[derive(Debug)]
pub enum ServeError {
    /// The join handshake was malformed or spoke an unknown wire version.
    Handshake(WireError),
    /// A tenant with this id is already being served.
    DuplicateTenant(String),
    /// No tenant with this id is being served.
    UnknownTenant(String),
    /// Connecting a collector daemon to the tenant's cluster failed.
    Collector(WireError),
    /// The tenant's analysis DAG failed to build.
    Build(BuildDagError),
    /// The tenant's online engine failed to launch.
    Start(OnlineStartError),
    /// The tenant's engine reported a module failure.
    Engine(RunEngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Handshake(e) => write!(f, "tenant handshake rejected: {e}"),
            ServeError::DuplicateTenant(t) => write!(f, "tenant `{t}` already joined"),
            ServeError::UnknownTenant(t) => write!(f, "no such tenant `{t}`"),
            ServeError::Collector(e) => write!(f, "collector connect failed: {e}"),
            ServeError::Build(e) => write!(f, "tenant DAG failed to build: {e}"),
            ServeError::Start(e) => write!(f, "tenant engine failed to start: {e}"),
            ServeError::Engine(e) => write!(f, "tenant engine failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Handshake(e) | ServeError::Collector(e) => Some(e),
            ServeError::Build(e) => Some(e),
            ServeError::Start(e) => Some(e),
            ServeError::Engine(e) => Some(e),
            ServeError::DuplicateTenant(_) | ServeError::UnknownTenant(_) => None,
        }
    }
}

/// A bounded, shed-oldest ingress queue decoupling one tenant's stream
/// from its engine.
///
/// `push` never blocks: at capacity the *oldest* frame is dropped (the
/// freshest observation is the valuable one for online diagnosis) and the
/// drop is counted — locally for test isolation and on the global
/// `rpc.shed_total.<tenant>` counter for operators.
pub struct IngressQueue {
    inner: Mutex<VecDeque<Bytes>>,
    capacity: usize,
    shed: AtomicU64,
    shed_counter: Arc<asdf_obs::Counter>,
    depth_gauge: Arc<asdf_obs::Gauge>,
}

impl IngressQueue {
    /// Creates a queue for `tenant` holding at most `capacity` frames.
    pub fn new(tenant: &str, capacity: usize) -> Self {
        let reg = asdf_obs::registry();
        IngressQueue {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            shed: AtomicU64::new(0),
            shed_counter: reg.counter(&format!("rpc.shed_total.{tenant}")),
            depth_gauge: reg.gauge(&format!("rpc.queue_depth.{tenant}")),
        }
    }

    /// Enqueues a frame, shedding the oldest one first when full.
    pub fn push(&self, frame: Bytes) {
        let mut q = self.inner.lock().expect("ingress queue lock");
        if q.len() >= self.capacity {
            q.pop_front();
            self.shed.fetch_add(1, Ordering::Relaxed);
            self.shed_counter.inc();
        }
        q.push_back(frame);
        self.depth_gauge.set(q.len() as i64);
    }

    /// Moves every queued frame into `out`, preserving order.
    pub fn drain_into(&self, out: &mut Vec<Bytes>) {
        let mut q = self.inner.lock().expect("ingress queue lock");
        out.extend(q.drain(..));
        self.depth_gauge.set(0);
    }

    /// Frames currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ingress queue lock").len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frames shed (dropped oldest-first) since creation.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// Encodes one collector frame for the ingress queue: stream tag, node
/// index, collection timestamp, and the value vector.
pub fn encode_frame(stream: u8, node: u32, timestamp: u64, values: &[f64]) -> Bytes {
    let mut b = MessageBuilder::new();
    b.put_u8(stream)
        .put_u32(node)
        .put_u64(timestamp)
        .put_f64_slice(values);
    b.finish()
}

/// The per-tenant ingest module: drains the tenant's ingress queue once
/// per engine tick and re-emits each frame on the per-node port of its
/// stream, stamped with the frame's *collection* timestamp.
///
/// Emitting with the original timestamps (via `emit_row_at`) is what makes
/// the downstream analyses a pure function of the frame sequence: `knn`
/// and the aligners key on sample timestamps, so queue batching — which
/// varies with wall-clock scheduling — cannot change any alarm.
struct ServeIngest {
    queue: Arc<IngressQueue>,
    origins: Vec<String>,
    white_box: bool,
    sadc_ports: Vec<PortId>,
    tt_ports: Vec<PortId>,
    st_ports: Vec<PortId>,
    buf: Vec<Bytes>,
}

impl ServeIngest {
    fn new(queue: Arc<IngressQueue>, origins: Vec<String>, white_box: bool) -> Self {
        ServeIngest {
            queue,
            origins,
            white_box,
            sadc_ports: Vec::new(),
            tt_ports: Vec::new(),
            st_ports: Vec::new(),
            buf: Vec::new(),
        }
    }
}

impl Module for ServeIngest {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        ctx.expect_input_count(0)?;
        for (i, origin) in self.origins.clone().into_iter().enumerate() {
            self.sadc_ports
                .push(ctx.declare_output_with_origin(format!("sadc{i}"), origin.clone()));
            if self.white_box {
                self.tt_ports
                    .push(ctx.declare_output_with_origin(format!("tt{i}"), origin.clone()));
                self.st_ports
                    .push(ctx.declare_output_with_origin(format!("st{i}"), origin));
            }
        }
        ctx.request_periodic(TickDuration::SECOND);
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        self.buf.clear();
        self.queue.drain_into(&mut self.buf);
        for frame in self.buf.drain(..) {
            let mut r = MessageReader::new(frame)
                .map_err(|e| ModuleError::Other(format!("bad ingress frame: {e}")))?;
            let (stream, node, ts, values) = (|| -> Result<_, WireError> {
                let stream = r.get_u8()?;
                let node = r.get_u32()? as usize;
                let ts = r.get_u64()?;
                let values = r.get_f64_slice()?;
                Ok((stream, node, ts, values))
            })()
            .map_err(|e| ModuleError::Other(format!("bad ingress frame: {e}")))?;
            let ports = match stream {
                STREAM_SADC => &self.sadc_ports,
                STREAM_LOG => &self.tt_ports,
                STREAM_STRACE => &self.st_ports,
                other => {
                    return Err(ModuleError::Other(format!(
                        "unknown ingress stream tag {other}"
                    )))
                }
            };
            let Some(&port) = ports.get(node) else {
                // White-box streams of a black-box-only tenant, or a node
                // index beyond the cluster: not wired, drop silently.
                continue;
            };
            ctx.emit_row_at(port, Timestamp::from_secs(ts), &values);
        }
        Ok(())
    }
}

/// Everything the daemon tracks for one joined tenant.
struct Tenant {
    engine: OnlineEngine,
    queue: Arc<IngressQueue>,
    feeder: Option<JoinHandle<()>>,
    feeder_stop: Arc<AtomicBool>,
    feeder_done: Arc<AtomicBool>,
}

/// What a tenant leaves behind: its drained alarm streams and the
/// soak-gate numbers.
#[derive(Debug)]
pub struct TenantReport {
    /// The tenant id from the join handshake.
    pub tenant: String,
    /// Black-box alarm/distance envelopes drained from the `bb` tap.
    pub bb_alarms: Vec<Envelope>,
    /// White-box (TaskTracker log) envelopes from the `wb_tt` tap.
    pub wb_tt_alarms: Vec<Envelope>,
    /// White-box (strace) envelopes from the `wb_st` tap.
    pub wb_st_alarms: Vec<Envelope>,
    /// Frames shed from the tenant's ingress queue.
    pub shed: u64,
    /// Worst scheduler lag the tenant's engine ever observed, in ticks.
    pub lag_watermark: i64,
    /// Envelopes delivered through the tenant's engine.
    pub delivered: u64,
}

/// The multi-tenant online diagnosis daemon.
///
/// One process, N tenants: each joined tenant gets its own simulated
/// cluster feeder, bounded ingress queue, and labeled [`OnlineEngine`].
/// See the module docs for the lifecycle; see `asdf serve` for the CLI.
pub struct ServeDaemon {
    model: Arc<BlackBoxModel>,
    opts: ServeOptions,
    tenants: BTreeMap<String, Tenant>,
}

impl ServeDaemon {
    /// Creates an idle daemon diagnosing against `model`.
    pub fn new(model: Arc<BlackBoxModel>, opts: ServeOptions) -> Self {
        ServeDaemon {
            model,
            opts,
            tenants: BTreeMap::new(),
        }
    }

    /// The daemon's shared options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Currently joined tenant ids, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// Generates the per-tenant analysis configuration (the Figure-4
    /// shape, fed by `serve_ingest` instead of in-process collectors).
    fn config(&self) -> Config {
        let o = &self.opts;
        let mut cfg = Config::new();
        let push = |cfg: &mut Config, inst: InstanceConfig| {
            cfg.push(inst).expect("generated ids are unique");
        };
        push(&mut cfg, InstanceConfig::new("serve_ingest", "ingest"));
        let centroids_text = self.model.centroids_param();
        let stddev_text = self.model.stddev_param();
        for i in 0..o.slaves {
            push(
                &mut cfg,
                InstanceConfig::new("knn", format!("onenn{i}"))
                    .with_param("centroids", centroids_text.clone())
                    .with_param("stddev", stddev_text.clone())
                    .with_param("k", 1)
                    .with_input("input", "ingest", format!("sadc{i}")),
            );
        }
        let mut bb = InstanceConfig::new("analysis_bb", "bb")
            .with_param("n_states", self.model.n_states())
            .with_param("window", o.window)
            .with_param("slide", o.slide)
            .with_param("threshold", o.threshold)
            .with_param("consecutive", o.consecutive);
        for i in 0..o.slaves {
            bb = bb.with_input(format!("l{i}"), format!("onenn{i}"), "output0");
        }
        push(&mut cfg, bb);
        if o.white_box {
            for (tag, port) in [("tt", "tt"), ("st", "st")] {
                for i in 0..o.slaves {
                    push(
                        &mut cfg,
                        InstanceConfig::new("mavgvec", format!("avg_{tag}_{i}"))
                            .with_param("window", o.window)
                            .with_param("slide", o.slide)
                            .with_param("emit", "both")
                            .with_input("input", "ingest", format!("{port}{i}")),
                    );
                }
                let mut wb = InstanceConfig::new("analysis_wb", format!("wb_{tag}"))
                    .with_param("k", o.wb_k)
                    .with_param("consecutive", o.consecutive);
                for i in 0..o.slaves {
                    wb = wb
                        .with_input(format!("a{i}"), format!("avg_{tag}_{i}"), "mean")
                        .with_input(format!("d{i}"), format!("avg_{tag}_{i}"), "stddev");
                }
                push(&mut cfg, wb);
            }
        }
        cfg
    }

    /// Admits a tenant: validates its wire handshake, builds its analysis
    /// engine, and starts its collector feeder. Runs while other tenants
    /// are being served — no restart involved.
    ///
    /// # Errors
    ///
    /// [`ServeError::Handshake`] for a malformed or version-mismatched
    /// hello, [`ServeError::DuplicateTenant`] if the id is taken, and the
    /// build/start variants if the tenant's engine cannot launch.
    pub fn join_tenant(&mut self, hello: Bytes, spec: TenantSpec) -> Result<String, ServeError> {
        let handshake = Handshake::decode(hello).map_err(ServeError::Handshake)?;
        let tenant = handshake.tenant;
        if self.tenants.contains_key(&tenant) {
            return Err(ServeError::DuplicateTenant(tenant));
        }

        let cluster = Cluster::new(ClusterConfig::new(self.opts.slaves, spec.seed), Vec::new());
        let origins: Vec<String> = (0..self.opts.slaves)
            .map(|i| cluster.slave_name(i).to_owned())
            .collect();
        let handle = ClusterHandle::new(cluster);
        let mut collectors: Vec<(u8, Box<dyn Collector + Send>)> = Vec::new();
        for node in 0..self.opts.slaves {
            collectors.push((
                STREAM_SADC,
                Box::new(SadcRpcd::connect(handle.clone(), node).map_err(ServeError::Collector)?),
            ));
            if self.opts.white_box {
                collectors.push((
                    STREAM_LOG,
                    Box::new(
                        HadoopLogRpcd::connect(handle.clone(), node, LogDaemon::TaskTracker)
                            .map_err(ServeError::Collector)?,
                    ),
                ));
                collectors.push((
                    STREAM_STRACE,
                    Box::new(
                        StraceRpcd::connect(handle.clone(), node).map_err(ServeError::Collector)?,
                    ),
                ));
            }
        }

        let capacity = spec.queue_capacity.unwrap_or(self.opts.queue_capacity);
        let queue = Arc::new(IngressQueue::new(&tenant, capacity));

        let mut registry = ModuleRegistry::new();
        asdf_modules::register_analysis_modules(&mut registry);
        let q = Arc::clone(&queue);
        let white_box = self.opts.white_box;
        registry.register("serve_ingest", move || {
            Box::new(ServeIngest::new(Arc::clone(&q), origins.clone(), white_box))
        });
        let dag = Dag::build(&registry, &self.config()).map_err(ServeError::Build)?;
        let mut builder = OnlineEngine::builder(dag)
            .wall_per_tick(self.opts.wall_per_tick)
            .speed(self.opts.speed)
            .batch_size(self.opts.batch_size)
            .label(tenant.clone())
            .tap("bb");
        if self.opts.white_box {
            builder = builder.tap("wb_tt").tap("wb_st");
        }
        let engine = builder.start().map_err(ServeError::Start)?;

        let feeder_stop = Arc::new(AtomicBool::new(false));
        let feeder_done = Arc::new(AtomicBool::new(false));
        let pace = if spec.flood {
            None
        } else {
            Some(self.opts.wall_per_tick.div_f64(self.opts.speed))
        };
        let feeder = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&feeder_stop);
            let done = Arc::clone(&feeder_done);
            let steps = spec.steps;
            std::thread::Builder::new()
                .name(format!("asdf-feed-{tenant}"))
                .spawn(move || {
                    feeder_loop(handle, collectors, queue, stop, steps, pace);
                    done.store(true, Ordering::Relaxed);
                })
                .map_err(|source| {
                    ServeError::Start(OnlineStartError::Spawn {
                        thread: format!("feed-{tenant}"),
                        source,
                    })
                })?
        };

        self.tenants.insert(
            tenant.clone(),
            Tenant {
                engine,
                queue,
                feeder: Some(feeder),
                feeder_stop,
                feeder_done,
            },
        );
        Ok(tenant)
    }

    /// Whether the tenant's feeder has streamed all its steps.
    pub fn tenant_done_streaming(&self, tenant: &str) -> bool {
        self.tenants
            .get(tenant)
            .is_some_and(|t| t.feeder_done.load(Ordering::Relaxed))
    }

    /// Frames currently queued for a tenant.
    pub fn tenant_queue_len(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.queue.len())
    }

    /// Frames shed from a tenant's queue so far.
    pub fn tenant_shed(&self, tenant: &str) -> u64 {
        self.tenants.get(tenant).map_or(0, |t| t.queue.shed_count())
    }

    /// Worst scheduler lag a tenant's engine has observed, in ticks.
    pub fn tenant_lag_watermark(&self, tenant: &str) -> i64 {
        self.tenants
            .get(tenant)
            .map_or(0, |t| t.engine.scheduler_lag_watermark())
    }

    /// Blocks until `tenant` has streamed all its steps and its queue is
    /// drained (or `timeout` passes / its engine fails). Returns whether
    /// the tenant actually went idle.
    pub fn wait_idle(&self, tenant: &str, timeout: Duration) -> bool {
        let Some(t) = self.tenants.get(tenant) else {
            return false;
        };
        let deadline = Instant::now() + timeout;
        loop {
            if t.engine.has_failed() {
                return false;
            }
            if t.feeder_done.load(Ordering::Relaxed) && t.queue.is_empty() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Removes a tenant: stops its feeder, waits for its ingress queue to
    /// drain, flushes the engine's in-flight envelopes, and returns the
    /// tenant's alarms and soak numbers. Other tenants keep running.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for an unknown id, or
    /// [`ServeError::Engine`] if the tenant's engine had failed.
    pub fn leave_tenant(&mut self, tenant: &str) -> Result<TenantReport, ServeError> {
        let mut t = self
            .tenants
            .remove(tenant)
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_owned()))?;
        t.feeder_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = t.feeder.take() {
            let _ = handle.join();
        }
        // Already-queued frames still belong to the tenant: give the
        // engine's periodic ingest a bounded window to drain them before
        // flushing (one tick suffices once the feeder is quiet).
        let deadline = Instant::now() + Duration::from_secs(10);
        while !t.queue.is_empty() && !t.engine.has_failed() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let lag_watermark = t.engine.scheduler_lag_watermark();
        let delivered = t.engine.envelopes_delivered();
        let bb = t.engine.tap_handle("bb").cloned();
        let wb_tt = t.engine.tap_handle("wb_tt").cloned();
        let wb_st = t.engine.tap_handle("wb_st").cloned();
        t.engine.flush_and_stop().map_err(ServeError::Engine)?;
        Ok(TenantReport {
            tenant: tenant.to_owned(),
            bb_alarms: bb.map(|h| h.drain()).unwrap_or_default(),
            wb_tt_alarms: wb_tt.map(|h| h.drain()).unwrap_or_default(),
            wb_st_alarms: wb_st.map(|h| h.drain()).unwrap_or_default(),
            shed: t.queue.shed_count(),
            lag_watermark,
            delivered,
        })
    }

    /// Graceful shutdown: leaves every tenant (in sorted order), flushing
    /// each engine's in-flight envelopes, and returns all reports.
    ///
    /// # Errors
    ///
    /// The first tenant-engine failure encountered; remaining tenants are
    /// still torn down by drop.
    pub fn shutdown(mut self) -> Result<Vec<TenantReport>, ServeError> {
        let ids = self.tenants();
        let mut reports = Vec::with_capacity(ids.len());
        for id in ids {
            reports.push(self.leave_tenant(&id)?);
        }
        Ok(reports)
    }
}

impl std::fmt::Debug for ServeDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeDaemon")
            .field("tenants", &self.tenants())
            .field("options", &self.opts)
            .finish()
    }
}

/// One tenant's collector feeder: ticks the monitored cluster once per
/// step, polls every collector over the accounted wire, and pushes the
/// encoded frames into the ingress queue — paced to `pace` per step, or
/// flat out when `pace` is `None` (a flooding tenant).
fn feeder_loop(
    handle: ClusterHandle,
    mut collectors: Vec<(u8, Box<dyn Collector + Send>)>,
    queue: Arc<IngressQueue>,
    stop: Arc<AtomicBool>,
    steps: u64,
    pace: Option<Duration>,
) {
    let start = Instant::now();
    for step in 0..steps {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        handle.tick();
        for (stream, collector) in &mut collectors {
            match collector.poll_sample() {
                Ok(Some(sample)) => {
                    queue.push(encode_frame(
                        *stream,
                        collector.node() as u32,
                        sample.timestamp,
                        &sample.values,
                    ));
                }
                Ok(None) => {}
                Err(e) => {
                    eprintln!(
                        "warning: [serve] {} collector poll failed, tenant stream ends: {e}",
                        collector.kind()
                    );
                    return;
                }
            }
        }
        if let Some(tick) = pace {
            let target = tick.mul_f64((step + 1) as f64);
            let elapsed = start.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_modules::kernel::CentroidBlock;

    fn tiny_model() -> Arc<BlackBoxModel> {
        let dim = 120;
        Arc::new(BlackBoxModel {
            stddev: vec![1.0; dim],
            centroids: CentroidBlock::from_rows(&[vec![0.0; dim], vec![5.0; dim]]),
        })
    }

    fn fast_opts() -> ServeOptions {
        ServeOptions {
            wall_per_tick: Duration::from_millis(2),
            window: 10,
            slide: 10,
            white_box: false,
            ..ServeOptions::default()
        }
    }

    #[test]
    fn frames_round_trip_through_the_ingress_encoding() {
        let frame = encode_frame(STREAM_SADC, 3, 41, &[1.0, 2.5]);
        let mut r = MessageReader::new(frame).unwrap();
        assert_eq!(r.get_u8().unwrap(), STREAM_SADC);
        assert_eq!(r.get_u32().unwrap(), 3);
        assert_eq!(r.get_u64().unwrap(), 41);
        assert_eq!(r.get_f64_slice().unwrap(), vec![1.0, 2.5]);
    }

    #[test]
    fn ingress_queue_sheds_oldest_when_full() {
        let q = IngressQueue::new("shedtest", 3);
        for i in 0..5u8 {
            q.push(encode_frame(STREAM_SADC, 0, i as u64, &[f64::from(i)]));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.shed_count(), 2);
        let mut out = Vec::new();
        q.drain_into(&mut out);
        // Oldest two (timestamps 0, 1) were shed; 2..5 survive in order.
        let stamps: Vec<u64> = out
            .into_iter()
            .map(|f| {
                let mut r = MessageReader::new(f).unwrap();
                r.get_u8().unwrap();
                r.get_u32().unwrap();
                r.get_u64().unwrap()
            })
            .collect();
        assert_eq!(stamps, [2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn tenant_joins_streams_and_leaves_with_alarms() {
        let mut daemon = ServeDaemon::new(tiny_model(), fast_opts());
        let hello = Handshake::new("alpha").encode();
        let id = daemon.join_tenant(hello, TenantSpec::paced(7, 40)).unwrap();
        assert_eq!(id, "alpha");
        assert_eq!(daemon.tenants(), ["alpha"]);
        assert!(daemon.wait_idle("alpha", Duration::from_secs(30)));
        let report = daemon.leave_tenant("alpha").unwrap();
        assert_eq!(report.shed, 0, "a paced tenant must not shed");
        // 40 steps at window/slide 10 = 4 evaluations x 4 nodes x
        // (alarm + dist) = 32 envelopes, all flushed out.
        assert_eq!(report.bb_alarms.len(), 32);
        assert!(daemon.tenants().is_empty());
    }

    #[test]
    fn duplicate_and_unknown_tenants_are_rejected() {
        let mut daemon = ServeDaemon::new(tiny_model(), fast_opts());
        daemon
            .join_tenant(Handshake::new("dup").encode(), TenantSpec::paced(1, 5))
            .unwrap();
        let err = daemon
            .join_tenant(Handshake::new("dup").encode(), TenantSpec::paced(2, 5))
            .unwrap_err();
        assert!(matches!(err, ServeError::DuplicateTenant(t) if t == "dup"));
        let err = daemon.leave_tenant("ghost").unwrap_err();
        assert!(matches!(err, ServeError::UnknownTenant(t) if t == "ghost"));
        daemon.shutdown().unwrap();
    }

    #[test]
    fn version_mismatched_hello_is_rejected_with_both_versions() {
        use asdf_rpc::wire::WIRE_VERSION;
        let mut daemon = ServeDaemon::new(tiny_model(), fast_opts());
        let mut b = MessageBuilder::new();
        b.put_u8(WIRE_VERSION + 9).put_str("evil");
        let err = daemon
            .join_tenant(b.finish(), TenantSpec::paced(1, 5))
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(&WIRE_VERSION.to_string())
                && msg.contains(&(WIRE_VERSION + 9).to_string()),
            "message should name both versions: {msg}"
        );
        assert!(matches!(
            err,
            ServeError::Handshake(WireError::VersionMismatch { .. })
        ));
    }
}
