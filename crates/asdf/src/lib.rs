//! `asdf` — the top-level facade of the ASDF reproduction.
//!
//! **ASDF** (*Automated System for Diagnosing Failures*; Bare, Kavulya,
//! Tan, Pan, Marinelli, Kasick, Gandhi, Narasimhan — DSN 2009) is an
//! online fingerpointing framework: it monitors time-varying black-box
//! (OS performance counters) and white-box (application-log state counts)
//! data sources across a distributed system and localizes performance
//! problems to the culprit node(s) by peer comparison, while the system
//! runs.
//!
//! This crate assembles the reproduction's pieces into turnkey pipelines
//! and reproduces the paper's entire evaluation:
//!
//! * [`pipeline`] — [`pipeline::AsdfBuilder`] generates the paper's
//!   Figure-4 DAGs (black-box: `sadc → knn → analysis_bb`; white-box:
//!   `hadoop_log → mavgvec → analysis_wb`) in the `fpt-core` config
//!   dialect and deploys them over a simulated Hadoop cluster;
//! * [`eval`] — node-window scoring: false-positive rate, balanced
//!   accuracy, fingerpointing latency;
//! * [`experiments`] — the campaign driver for every table and figure
//!   (training, fault-free sweeps, six fault injections, overhead and
//!   bandwidth measurements);
//! * [`campaign`] — the bounded worker pool that fans independent runs
//!   out across threads with deterministic, order-preserving collection;
//! * [`report`] — plain-text rendering in the shape of the paper's
//!   tables;
//! * [`serve`] — the long-lived multi-tenant diagnosis daemon behind
//!   `asdf serve`: many monitored clusters ("tenants") stream collector
//!   frames over the versioned wire protocol into bounded per-tenant
//!   ingress queues, each diagnosed by its own labeled online engine;
//! * [`perfwatch`] — the dogfooded perf-regression watchdog: it loads
//!   the repo's own `BENCH_history.jsonl` benchmark series, runs
//!   E-Divisive-mean change-point detection per metric, and cross-checks
//!   the findings by replaying the history through a real
//!   `mavgvec → knn → analysis_bb` peer-comparison DAG (ASDF diagnosing
//!   ASDF).
//!
//! # Quick start
//!
//! ```
//! use asdf::experiments::{self, CampaignConfig};
//! use hadoop_sim::faults::FaultKind;
//!
//! // Small smoke-sized campaign (the paper uses 50-node clusters).
//! let cfg = CampaignConfig::smoke();
//! let model = experiments::train_model(&cfg);
//! let traces = experiments::run_once(&cfg, &model, Some(FaultKind::CpuHog), 99);
//! let result = experiments::score_run(&traces, FaultKind::CpuHog);
//! println!("balanced accuracy (combined): {:.1}%", result.ba_combined);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod eval;
pub mod experiments;
pub mod perfwatch;
pub mod pipeline;
pub mod report;
pub mod serve;

pub use eval::{AnalysisTrace, Confusion, GroundTruth};
pub use pipeline::{AsdfBuilder, AsdfOptions, Deployment};
pub use serve::{ServeDaemon, ServeError, ServeOptions, TenantReport, TenantSpec};
