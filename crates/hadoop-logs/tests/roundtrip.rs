//! Round-trip test: logs emitted by the cluster simulator are parsed back
//! into state vectors by the log parser, with no shared code or knowledge
//! between the two crates beyond the Hadoop 0.18 log format itself.

use hadoop_logs::parser::LogParser;
use hadoop_logs::states::HadoopState;
use hadoop_sim::cluster::{Cluster, ClusterConfig};

#[test]
fn simulator_logs_parse_into_nonzero_state_vectors() {
    let mut cluster = Cluster::new(ClusterConfig::new(4, 99), Vec::new());
    let mut parsers: Vec<LogParser> = (0..4).map(|_| LogParser::new()).collect();
    let mut saw_map = false;
    let mut saw_reduce_phase = false;
    let mut saw_block = false;

    for _ in 0..600 {
        cluster.tick();
        let t = cluster.now();
        #[allow(clippy::needless_range_loop)] // node indexes both cluster and parsers
        for node in 0..4 {
            let (tt, dn) = cluster.drain_logs(node);
            for line in tt.iter().chain(dn.iter()) {
                parsers[node].feed_line(line);
            }
            let v = parsers[node].sample(t);
            // Counts must never go negative.
            assert!(
                v.as_slice().iter().all(|&x| x >= 0.0),
                "negative count: {v}"
            );
            saw_map |= v[HadoopState::MapTask] > 0.0;
            saw_reduce_phase |= v[HadoopState::ReduceCopy] > 0.0
                || v[HadoopState::ReduceSort] > 0.0
                || v[HadoopState::ReduceReducer] > 0.0;
            saw_block |= v[HadoopState::ReadBlock] > 0.0 || v[HadoopState::WriteBlock] > 0.0;
        }
    }

    assert!(saw_map, "map activity should be visible in parsed states");
    assert!(saw_reduce_phase, "reduce phases should be visible");
    assert!(saw_block, "HDFS block activity should be visible");

    // After a long run most transient states come and go; the parser's live
    // set must stay bounded by what is actually still running.
    for (node, p) in parsers.iter().enumerate() {
        let live = p.live_instances();
        assert!(
            live <= 64,
            "node {node}: live instances should stay bounded, got {live}"
        );
        let (seen, parsed) = p.line_stats();
        assert!(seen > 0);
        assert!(parsed > 0, "some lines must be recognized");
    }
}

#[test]
fn every_launch_line_is_recognized_by_the_parser() {
    let mut cluster = Cluster::new(ClusterConfig::new(3, 123), Vec::new());
    cluster.advance(300);
    let mut parser = LogParser::new();
    for node in 0..3 {
        let (tt, dn) = cluster.drain_logs(node);
        for line in tt.iter().chain(dn.iter()) {
            let before = parser.line_stats().1;
            parser.feed_line(line);
            let after = parser.line_stats().1;
            // Every line the simulator writes is DFA-relevant except none —
            // the simulator only emits state-transition lines today, so the
            // parser must recognize all of them.
            assert_eq!(after, before + 1, "unrecognized simulator line: {line}");
        }
    }
}
