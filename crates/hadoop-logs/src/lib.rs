//! `hadoop-logs` — white-box instrumentation via Hadoop's native logs.
//!
//! A unique aspect of ASDF's Hadoop fingerpointing is that its white-box
//! metrics come from the logs Hadoop *already writes*, with no source
//! modification: "we construct an a priori view of the relationship between
//! Hadoop's mode of execution and its emitted log entries" (paper §4.4).
//!
//! The crate provides that a-priori view:
//!
//! * [`states`] — the DFA state vocabulary (TaskTracker: MapTask,
//!   ReduceTask, ReduceCopy, ReduceSort, ReduceReducer; DataNode:
//!   ReadBlock, WriteBlock, DeleteBlock) and per-second [`states::StateVector`]s;
//! * [`event`] — log-line → state-entrance/exit/instant event extraction;
//! * [`parser`] — the constant-memory streaming [`parser::LogParser`];
//! * [`sync`] — cross-node timestamp alignment with the paper's
//!   drop-on-missing semantics ([`sync::Aligner`]).
//!
//! # Examples
//!
//! ```
//! use hadoop_logs::parser::LogParser;
//! use hadoop_logs::states::HadoopState;
//!
//! let mut parser = LogParser::new();
//! parser.feed_line(
//!     "2008-04-15 14:23:15,324 INFO org.apache.hadoop.mapred.TaskTracker: \
//!      LaunchTaskAction: task_0001_m_000096_0",
//! );
//! let v = parser.sample(14 * 3600 + 23 * 60 + 15);
//! assert_eq!(v[HadoopState::MapTask], 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod parser;
pub mod states;
pub mod sync;

pub use parser::LogParser;
pub use states::{HadoopState, StateVector};
pub use sync::Aligner;
