//! The white-box state vocabulary.
//!
//! The paper (§4.4) views each Hadoop daemon thread as a deterministic
//! finite automaton whose states are "high-level modes of execution", with
//! log entries marking state-entrance and state-exit events. This module
//! fixes the state vocabulary for the two slave daemons:
//!
//! * TaskTracker: `MapTask`, `ReduceTask` (overall), plus the reduce
//!   sub-phases `ReduceCopy`, `ReduceSort`, `ReduceReducer`;
//! * DataNode: `ReadBlock`, `WriteBlock`, and the instant `DeleteBlock`.
//!
//! A [`StateVector`] gives, for one node and one second, the number of
//! simultaneously active instances of each state (instant states count
//! occurrences within the second).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A high-level Hadoop execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HadoopState {
    /// A map task attempt is executing (TaskTracker).
    MapTask,
    /// A reduce task attempt is executing, any phase (TaskTracker).
    ReduceTask,
    /// A reduce attempt is copying map outputs (TaskTracker).
    ReduceCopy,
    /// A reduce attempt is merging/sorting (TaskTracker).
    ReduceSort,
    /// A reduce attempt is running the user reduce function (TaskTracker).
    ReduceReducer,
    /// A task attempt failed — an *instant* event (TaskTracker).
    TaskFailed,
    /// The datanode is serving a block to a reader (DataNode).
    ReadBlock,
    /// The datanode is receiving a block — HDFS write pipeline (DataNode).
    WriteBlock,
    /// The datanode deleted a block — an *instant* state (DataNode).
    DeleteBlock,
}

impl HadoopState {
    /// All states, in vector order.
    pub const ALL: [HadoopState; 9] = [
        HadoopState::MapTask,
        HadoopState::ReduceTask,
        HadoopState::ReduceCopy,
        HadoopState::ReduceSort,
        HadoopState::ReduceReducer,
        HadoopState::TaskFailed,
        HadoopState::ReadBlock,
        HadoopState::WriteBlock,
        HadoopState::DeleteBlock,
    ];

    /// The TaskTracker-owned states, in vector order.
    pub const TASKTRACKER: [HadoopState; 6] = [
        HadoopState::MapTask,
        HadoopState::ReduceTask,
        HadoopState::ReduceCopy,
        HadoopState::ReduceSort,
        HadoopState::ReduceReducer,
        HadoopState::TaskFailed,
    ];

    /// The DataNode-owned states, in vector order.
    pub const DATANODE: [HadoopState; 3] = [
        HadoopState::ReadBlock,
        HadoopState::WriteBlock,
        HadoopState::DeleteBlock,
    ];

    /// The state's index in [`StateVector`] order.
    pub fn index(self) -> usize {
        HadoopState::ALL
            .iter()
            .position(|s| *s == self)
            .expect("every state is in ALL")
    }

    /// Whether this state is instantaneous (entrance and exit coincide).
    pub fn is_instant(self) -> bool {
        matches!(self, HadoopState::DeleteBlock | HadoopState::TaskFailed)
    }

    /// Whether this state appears in TaskTracker logs (vs DataNode logs).
    pub fn is_tasktracker(self) -> bool {
        HadoopState::TASKTRACKER.contains(&self)
    }

    /// Short metric-style name.
    pub fn name(self) -> &'static str {
        match self {
            HadoopState::MapTask => "MapTask",
            HadoopState::ReduceTask => "ReduceTask",
            HadoopState::ReduceCopy => "ReduceCopy",
            HadoopState::ReduceSort => "ReduceSort",
            HadoopState::ReduceReducer => "ReduceReducer",
            HadoopState::TaskFailed => "TaskFailed",
            HadoopState::ReadBlock => "ReadBlock",
            HadoopState::WriteBlock => "WriteBlock",
            HadoopState::DeleteBlock => "DeleteBlock",
        }
    }
}

impl fmt::Display for HadoopState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-second counts of simultaneously-executing instances of each state —
/// the paper's "vector of states for each time instance".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StateVector {
    counts: [f64; 9],
}

impl StateVector {
    /// The zero vector.
    pub fn zero() -> Self {
        StateVector::default()
    }

    /// Creates a vector from raw counts in [`HadoopState::ALL`] order.
    pub fn from_counts(counts: [f64; 9]) -> Self {
        StateVector { counts }
    }

    /// The raw counts in [`HadoopState::ALL`] order.
    pub fn as_slice(&self) -> &[f64] {
        &self.counts
    }

    /// The counts for TaskTracker states only, in
    /// [`HadoopState::TASKTRACKER`] order.
    pub fn tasktracker_slice(&self) -> &[f64] {
        &self.counts[0..HadoopState::TASKTRACKER.len()]
    }

    /// The counts for DataNode states only, in [`HadoopState::DATANODE`]
    /// order.
    pub fn datanode_slice(&self) -> &[f64] {
        &self.counts[HadoopState::TASKTRACKER.len()..]
    }

    /// Sum of all counts (total concurrent activity).
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }
}

impl Index<HadoopState> for StateVector {
    type Output = f64;

    fn index(&self, s: HadoopState) -> &f64 {
        &self.counts[s.index()]
    }
}

impl IndexMut<HadoopState> for StateVector {
    fn index_mut(&mut self, s: HadoopState) -> &mut f64 {
        &mut self.counts[s.index()]
    }
}

impl fmt::Display for StateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, s) in HadoopState::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", s.name(), self.counts[i])?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_consistent_with_all_order() {
        for (i, s) in HadoopState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn daemon_partition_is_total_and_disjoint() {
        for s in HadoopState::ALL {
            assert_eq!(
                s.is_tasktracker(),
                !HadoopState::DATANODE.contains(&s),
                "{s} must belong to exactly one daemon"
            );
        }
        assert_eq!(
            HadoopState::TASKTRACKER.len() + HadoopState::DATANODE.len(),
            HadoopState::ALL.len()
        );
    }

    #[test]
    fn only_delete_block_and_task_failed_are_instant() {
        for s in HadoopState::ALL {
            assert_eq!(
                s.is_instant(),
                s == HadoopState::DeleteBlock || s == HadoopState::TaskFailed
            );
        }
    }

    #[test]
    fn vector_indexing_and_slices() {
        let mut v = StateVector::zero();
        v[HadoopState::MapTask] = 3.0;
        v[HadoopState::ReadBlock] = 2.0;
        assert_eq!(v[HadoopState::MapTask], 3.0);
        assert_eq!(v.total(), 5.0);
        assert_eq!(v.tasktracker_slice(), &[3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(v.datanode_slice(), &[2.0, 0.0, 0.0]);
        assert_eq!(v.as_slice().len(), 9);
    }

    #[test]
    fn display_names_all_states() {
        let s = StateVector::zero().to_string();
        for state in HadoopState::ALL {
            assert!(s.contains(state.name()), "missing {state}");
        }
    }
}
