//! Cross-node timestamp alignment.
//!
//! The paper (§3.7): "the data analysis must operate on data at the same
//! time points, \[so\] cross-instance synchronization is needed within the
//! `hadoop_log` module ... The module waits for all nodes to reveal data
//! with the same timestamp before updating its outputs, or, if one or more
//! nodes does not contain data for a particular timestamp, this data is
//! dropped."
//!
//! [`Aligner`] implements exactly that: per-node time-indexed buffers, a
//! pop operation that releases a row only when *every* node has
//! contributed that timestamp, and drop semantics for timestamps that some
//! node skipped.

use std::collections::BTreeMap;

/// Aligns per-node time series so downstream peer comparison always sees
/// one row per timestamp with a value from every node.
///
/// # Examples
///
/// ```
/// use hadoop_logs::sync::Aligner;
///
/// let mut a: Aligner<f64> = Aligner::new(2);
/// a.push(0, 10, 1.0);
/// assert!(a.pop_aligned().is_none()); // node 1 hasn't reported t=10 yet
/// a.push(1, 10, 2.0);
/// assert_eq!(a.pop_aligned(), Some((10, vec![1.0, 2.0])));
/// ```
#[derive(Debug, Clone)]
pub struct Aligner<T> {
    buffers: Vec<BTreeMap<u64, T>>,
    /// Timestamps at or before this are gone (released or dropped).
    released_through: Option<u64>,
    dropped: u64,
}

impl<T: Clone> Aligner<T> {
    /// Creates an aligner for `n_nodes` input streams.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    pub fn new(n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "aligner needs at least one stream");
        Aligner {
            buffers: vec![BTreeMap::new(); n_nodes],
            released_through: None,
            dropped: 0,
        }
    }

    /// Number of aligned streams.
    pub fn n_nodes(&self) -> usize {
        self.buffers.len()
    }

    /// Records that `node` observed `value` at time `t`.
    ///
    /// Values at timestamps already released or dropped are discarded (a
    /// straggler that shows up after its row was given up on).
    pub fn push(&mut self, node: usize, t: u64, value: T) {
        if let Some(thru) = self.released_through {
            if t <= thru {
                self.dropped += 1;
                return;
            }
        }
        self.buffers[node].insert(t, value);
    }

    /// Releases the earliest timestamp every node has contributed, dropping
    /// any earlier, incomplete timestamps on the way (some node skipped
    /// them, so they can never complete).
    ///
    /// Returns `(t, values-in-node-order)` or `None` when no timestamp is
    /// complete yet.
    pub fn pop_aligned(&mut self) -> Option<(u64, Vec<T>)> {
        // The earliest candidate that *could* be complete is the maximum
        // over nodes of each node's earliest buffered timestamp.
        let mut candidate: u64 = 0;
        for buf in &self.buffers {
            let first = *buf.keys().next()?; // any empty buffer ⇒ nothing complete
            candidate = candidate.max(first);
        }
        // Walk forward from the candidate until a timestamp is complete:
        // a node may be missing `candidate` even though it has later data.
        loop {
            let mut all_have = true;
            let mut next_candidate = None;
            for buf in &self.buffers {
                if buf.contains_key(&candidate) {
                    continue;
                }
                all_have = false;
                // The node's next timestamp after the failed candidate.
                match buf.range(candidate..).next() {
                    Some((&t, _)) => {
                        next_candidate = Some(next_candidate.map_or(t, |c: u64| c.max(t)));
                    }
                    None => return None, // node has no data ≥ candidate yet
                }
            }
            if all_have {
                break;
            }
            candidate = next_candidate.expect("some node forced a later candidate");
        }
        // Release: extract values at `candidate`, drop everything earlier.
        let mut row = Vec::with_capacity(self.buffers.len());
        for buf in &mut self.buffers {
            let mut stale = buf.range(..candidate).count() as u64;
            while let Some((&t, _)) = buf.iter().next() {
                if t < candidate {
                    buf.remove(&t);
                } else {
                    break;
                }
            }
            // `stale` rows were dropped because a peer skipped them.
            self.dropped += std::mem::take(&mut stale);
            row.push(buf.remove(&candidate).expect("candidate complete"));
        }
        self.released_through = Some(candidate);
        Some((candidate, row))
    }

    /// Pops every complete row currently available.
    pub fn drain_aligned(&mut self) -> Vec<(u64, Vec<T>)> {
        let mut out = Vec::new();
        while let Some(row) = self.pop_aligned() {
            out.push(row);
        }
        out
    }

    /// Number of per-node values discarded because their timestamp was
    /// incomplete (matches the paper's drop-on-missing semantics).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total buffered values awaiting alignment.
    pub fn pending(&self) -> usize {
        self.buffers.iter().map(BTreeMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_release_only_when_all_nodes_report() {
        let mut a: Aligner<i32> = Aligner::new(3);
        a.push(0, 5, 10);
        a.push(1, 5, 20);
        assert_eq!(a.pop_aligned(), None);
        a.push(2, 5, 30);
        assert_eq!(a.pop_aligned(), Some((5, vec![10, 20, 30])));
        assert_eq!(a.pop_aligned(), None);
    }

    #[test]
    fn skipped_timestamps_are_dropped() {
        let mut a: Aligner<i32> = Aligner::new(2);
        // Node 0 reports t=1,2,3; node 1 skips t=1,2 and reports t=3.
        a.push(0, 1, 1);
        a.push(0, 2, 2);
        a.push(0, 3, 3);
        a.push(1, 3, 30);
        assert_eq!(a.pop_aligned(), Some((3, vec![3, 30])));
        assert_eq!(a.dropped(), 2, "node 0's t=1,2 were dropped");
    }

    #[test]
    fn stragglers_after_release_are_discarded() {
        let mut a: Aligner<i32> = Aligner::new(2);
        a.push(0, 10, 1);
        a.push(1, 10, 2);
        assert!(a.pop_aligned().is_some());
        a.push(0, 9, 99); // too late
        a.push(1, 9, 99);
        assert_eq!(a.pop_aligned(), None);
        assert_eq!(a.dropped(), 2);
    }

    #[test]
    fn interleaved_progress_releases_in_order() {
        let mut a: Aligner<i32> = Aligner::new(2);
        for t in 0..5 {
            a.push(0, t, t as i32);
        }
        for t in 0..5 {
            a.push(1, t, 10 + t as i32);
        }
        let rows = a.drain_aligned();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], (0, vec![0, 10]));
        assert_eq!(rows[4], (4, vec![4, 14]));
        assert_eq!(a.pending(), 0);
        assert_eq!(a.dropped(), 0);
    }

    #[test]
    fn candidate_walks_forward_over_mutual_gaps() {
        let mut a: Aligner<i32> = Aligner::new(2);
        // Node 0 has {1, 4}; node 1 has {2, 4}: only 4 is mutual.
        a.push(0, 1, 0);
        a.push(0, 4, 40);
        a.push(1, 2, 0);
        a.push(1, 4, 41);
        assert_eq!(a.pop_aligned(), Some((4, vec![40, 41])));
        assert_eq!(a.dropped(), 2);
    }

    #[test]
    fn single_stream_degenerates_to_passthrough() {
        let mut a: Aligner<&str> = Aligner::new(1);
        a.push(0, 7, "x");
        assert_eq!(a.pop_aligned(), Some((7, vec!["x"])));
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_panics() {
        let _: Aligner<i32> = Aligner::new(0);
    }
}
