//! The per-node log parser: lines in, per-second state vectors out.
//!
//! [`LogParser`] implements the paper's `hadoop-log-parser`: it performs
//! "on-demand, lazy parsing of the logs ... to generate counts of event and
//! state occurrences", keeping only "compact internal representations for
//! just sufficiently long durations to infer the states" — concretely, a
//! map from live state-instance keys (task attempts, block ids) to their
//! held states, plus the current per-state active counts. Memory is
//! bounded by the number of *concurrently live* instances, not by log
//! length.

use std::collections::HashMap;

use crate::event::{parse_line, Edge, LogLineEvent};
use crate::states::{HadoopState, StateVector};

/// Streaming parser for one node's TaskTracker + DataNode logs.
///
/// Feed lines with [`LogParser::feed_line`] (in timestamp order, the order
/// a log file is written), then sample per-second state vectors with
/// [`LogParser::sample`].
///
/// # Examples
///
/// ```
/// use hadoop_logs::parser::LogParser;
/// use hadoop_logs::states::HadoopState;
///
/// let mut p = LogParser::new();
/// p.feed_line("2008-04-15 14:00:05,000 INFO org.apache.hadoop.mapred.TaskTracker: \
///              LaunchTaskAction: task_0001_m_000001_0");
/// let v = p.sample(14 * 3600 + 10);
/// assert_eq!(v[HadoopState::MapTask], 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct LogParser {
    /// Live state instances: key → states currently held.
    live: HashMap<String, Vec<HadoopState>>,
    /// Current number of active instances per state.
    active: StateVector,
    /// Timestamped instant events inside the rolling horizon:
    /// `(sample index, state)`.
    instant_events: std::collections::VecDeque<(u64, HadoopState)>,
    /// Rolling horizon for instant-event counts, in samples.
    instant_horizon: u64,
    /// Monotone sample counter (bumped by [`LogParser::sample`]).
    sample_idx: u64,
    /// Lines seen / recognized, for diagnostics.
    lines_seen: u64,
    lines_parsed: u64,
}

impl Default for LogParser {
    fn default() -> Self {
        LogParser::new()
    }
}

impl LogParser {
    /// Creates a parser with the default 60-sample rolling horizon for
    /// instant events.
    ///
    /// Duration-style states (MapTask, ReadBlock, ...) are reported as
    /// concurrent-instance counts; *instant* events (block deletions, task
    /// failures) are reported as occurrence counts over the last
    /// `horizon` samples — a plain per-second count would dilute sparse
    /// events (a failure every few seconds) to invisibility under
    /// windowed averaging.
    pub fn new() -> Self {
        LogParser::with_instant_horizon(60)
    }

    /// Creates a parser with an explicit rolling horizon (in samples) for
    /// instant-event counts.
    pub fn with_instant_horizon(horizon: u64) -> Self {
        LogParser {
            live: HashMap::new(),
            active: StateVector::zero(),
            instant_events: std::collections::VecDeque::new(),
            instant_horizon: horizon.max(1),
            sample_idx: 0,
            lines_seen: 0,
            lines_parsed: 0,
        }
    }

    /// Processes one raw log line. Unrecognized lines are counted and
    /// skipped.
    pub fn feed_line(&mut self, line: &str) {
        self.lines_seen += 1;
        let Some(event) = parse_line(line) else {
            return;
        };
        self.lines_parsed += 1;
        self.apply(event);
    }

    /// Processes a batch of lines.
    pub fn feed_lines<'a>(&mut self, lines: impl IntoIterator<Item = &'a str>) {
        for l in lines {
            self.feed_line(l);
        }
    }

    fn apply(&mut self, event: LogLineEvent<'_>) {
        match event.edge {
            Edge::Instant => {
                self.instant_events
                    .push_back((self.sample_idx, event.state));
            }
            Edge::Start => {
                // The event borrows its key from the line; only the first
                // Start for an instance copies it into the map — repeated
                // entrances and every later lookup stay allocation-free.
                match self.live.get_mut(event.key) {
                    Some(held) => held.push(event.state),
                    None => {
                        self.live.insert(event.key.to_owned(), vec![event.state]);
                    }
                }
                self.active[event.state] += 1.0;
                // Entering the overall ReduceTask state does not enter any
                // sub-phase; sub-phase entrances arrive as their own lines.
            }
            Edge::End => {
                if event.killed {
                    // A jobtracker kill ends every state the attempt holds
                    // without counting as a failure.
                    if let Some(held) = self.live.remove(event.key) {
                        for s in held {
                            self.active[s] -= 1.0;
                        }
                    }
                    return;
                }
                if event.failure {
                    // A failure line ends *every* state the instance holds
                    // (the attempt is gone) and counts as a TaskFailed
                    // instant event.
                    self.instant_events
                        .push_back((self.sample_idx, HadoopState::TaskFailed));
                    if let Some(held) = self.live.remove(event.key) {
                        for s in held {
                            self.active[s] -= 1.0;
                        }
                    }
                    return;
                }
                let mut remove_entry = false;
                if let Some(held) = self.live.get_mut(event.key) {
                    if let Some(pos) = held.iter().position(|s| *s == event.state) {
                        held.remove(pos);
                        self.active[event.state] -= 1.0;
                    }
                    // Exiting the sort phase means the reducer phase begins
                    // (paper Figure 5's DFA: transitions compose an exit
                    // with the next entrance).
                    if event.state == HadoopState::ReduceSort {
                        held.push(HadoopState::ReduceReducer);
                        self.active[HadoopState::ReduceReducer] += 1.0;
                    }
                    // A task-done line for the overall state also closes
                    // any sub-phases still open (defensive: a reducer ends
                    // while in ReduceReducer).
                    if matches!(event.state, HadoopState::MapTask | HadoopState::ReduceTask) {
                        for s in held.drain(..) {
                            self.active[s] -= 1.0;
                        }
                    }
                    remove_entry = held.is_empty();
                }
                if remove_entry {
                    self.live.remove(event.key);
                }
            }
        }
    }

    /// Returns the state vector for the second `_at`: currently-active
    /// counts for duration states, plus instant-event counts over the
    /// rolling horizon.
    ///
    /// Call once per second after feeding that second's lines.
    pub fn sample(&mut self, _at: u64) -> StateVector {
        self.sample_idx += 1;
        // Expire instant events that fell off the horizon.
        let cutoff = self.sample_idx.saturating_sub(self.instant_horizon);
        while let Some(&(idx, _)) = self.instant_events.front() {
            if idx < cutoff {
                self.instant_events.pop_front();
            } else {
                break;
            }
        }
        let mut v = self.active;
        for &(_, s) in &self.instant_events {
            v[s] += 1.0;
        }
        v
    }

    /// Number of state instances currently live (bounds parser memory).
    pub fn live_instances(&self) -> usize {
        self.live.len()
    }

    /// `(lines seen, lines recognized)` counters.
    pub fn line_stats(&self) -> (u64, u64) {
        (self.lines_seen, self.lines_parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: u64 = 14 * 3600;

    fn tt(sec: u64, body: &str) -> String {
        let (h, m, s) = (sec / 3600, (sec % 3600) / 60, sec % 60);
        format!("2008-04-15 {h:02}:{m:02}:{s:02},000 INFO org.apache.hadoop.mapred.{body}")
    }

    fn dn(sec: u64, body: &str) -> String {
        let (h, m, s) = (sec / 3600, (sec % 3600) / 60, sec % 60);
        format!("2008-04-15 {h:02}:{m:02}:{s:02},000 INFO org.apache.hadoop.dfs.DataNode: {body}")
    }

    #[test]
    fn map_lifecycle_counts_rise_and_fall() {
        let mut p = LogParser::new();
        p.feed_line(&tt(
            T0 + 1,
            "TaskTracker: LaunchTaskAction: task_0001_m_000000_0",
        ));
        p.feed_line(&tt(
            T0 + 2,
            "TaskTracker: LaunchTaskAction: task_0001_m_000001_0",
        ));
        let v = p.sample(T0 + 2);
        assert_eq!(v[HadoopState::MapTask], 2.0);
        p.feed_line(&tt(
            T0 + 9,
            "TaskTracker: Task task_0001_m_000000_0 is done.",
        ));
        let v = p.sample(T0 + 9);
        assert_eq!(v[HadoopState::MapTask], 1.0);
        assert_eq!(p.live_instances(), 1);
    }

    #[test]
    fn reduce_sub_phases_transition_correctly() {
        let mut p = LogParser::new();
        let a = "task_0001_r_000000_0";
        p.feed_line(&tt(T0, &format!("TaskTracker: LaunchTaskAction: {a}")));
        p.feed_line(&tt(T0, &format!("ReduceTask: {a} Copying map outputs")));
        let v = p.sample(T0);
        assert_eq!(v[HadoopState::ReduceTask], 1.0);
        assert_eq!(v[HadoopState::ReduceCopy], 1.0);
        assert_eq!(v[HadoopState::ReduceSort], 0.0);

        p.feed_line(&tt(
            T0 + 30,
            &format!("ReduceTask: {a} Copying of all map outputs complete"),
        ));
        p.feed_line(&tt(
            T0 + 30,
            &format!("ReduceTask: {a} Merging map outputs"),
        ));
        let v = p.sample(T0 + 30);
        assert_eq!(v[HadoopState::ReduceCopy], 0.0);
        assert_eq!(v[HadoopState::ReduceSort], 1.0);

        p.feed_line(&tt(
            T0 + 40,
            &format!("ReduceTask: {a} Merge complete, reducing"),
        ));
        let v = p.sample(T0 + 40);
        assert_eq!(v[HadoopState::ReduceSort], 0.0);
        assert_eq!(v[HadoopState::ReduceReducer], 1.0);
        assert_eq!(v[HadoopState::ReduceTask], 1.0);

        p.feed_line(&tt(T0 + 50, &format!("TaskTracker: Task {a} is done.")));
        let v = p.sample(T0 + 50);
        assert_eq!(v.total(), 0.0);
        assert_eq!(p.live_instances(), 0);
    }

    #[test]
    fn failure_clears_all_states_of_the_attempt() {
        let mut p = LogParser::new();
        let a = "task_0002_r_000001_0";
        p.feed_line(&tt(T0, &format!("TaskTracker: LaunchTaskAction: {a}")));
        p.feed_line(&tt(T0, &format!("ReduceTask: {a} Copying map outputs")));
        assert_eq!(p.sample(T0).total(), 2.0);
        p.feed_line(&format!(
            "2008-04-15 14:01:00,000 WARN org.apache.hadoop.mapred.TaskRunner: {a} copy failure"
        ));
        let v = p.sample(T0 + 60);
        assert_eq!(
            v[HadoopState::TaskFailed],
            1.0,
            "failure counted as instant"
        );
        assert_eq!(v.total(), 1.0);
        assert_eq!(p.live_instances(), 0);
        // The failure stays visible across the rolling horizon, then ages
        // out.
        assert_eq!(p.sample(T0 + 61)[HadoopState::TaskFailed], 1.0);
        for t in 0..60 {
            p.sample(T0 + 62 + t);
        }
        assert_eq!(p.sample(T0 + 200)[HadoopState::TaskFailed], 0.0);
    }

    #[test]
    fn datanode_reads_and_writes_are_tracked_per_block() {
        let mut p = LogParser::new();
        p.feed_line(&dn(T0, "Serving block blk_-1 to /10.1.0.5"));
        p.feed_line(&dn(T0, "Serving block blk_-2 to /10.1.0.6"));
        p.feed_line(&dn(T0, "Receiving block blk_-3 src: /10.1.0.7"));
        let v = p.sample(T0);
        assert_eq!(v[HadoopState::ReadBlock], 2.0);
        assert_eq!(v[HadoopState::WriteBlock], 1.0);

        p.feed_line(&dn(T0 + 5, "Served block blk_-1"));
        p.feed_line(&dn(T0 + 6, "Received block blk_-3 of size 1024"));
        let v = p.sample(T0 + 6);
        assert_eq!(v[HadoopState::ReadBlock], 1.0);
        assert_eq!(v[HadoopState::WriteBlock], 0.0);
    }

    #[test]
    fn concurrent_reads_of_the_same_block_nest() {
        let mut p = LogParser::new();
        p.feed_line(&dn(T0, "Serving block blk_-9 to /10.1.0.5"));
        p.feed_line(&dn(T0, "Serving block blk_-9 to /10.1.0.6"));
        assert_eq!(p.sample(T0)[HadoopState::ReadBlock], 2.0);
        p.feed_line(&dn(T0 + 1, "Served block blk_-9"));
        assert_eq!(p.sample(T0 + 1)[HadoopState::ReadBlock], 1.0);
        p.feed_line(&dn(T0 + 2, "Served block blk_-9"));
        assert_eq!(p.sample(T0 + 2)[HadoopState::ReadBlock], 0.0);
    }

    #[test]
    fn instant_events_roll_over_the_horizon() {
        let mut p = LogParser::with_instant_horizon(3);
        p.feed_line(&dn(T0, "Deleting block blk_-5 file x"));
        p.feed_line(&dn(T0, "Deleting block blk_-6 file x"));
        assert_eq!(p.sample(T0)[HadoopState::DeleteBlock], 2.0);
        p.feed_line(&dn(T0 + 1, "Deleting block blk_-7 file x"));
        assert_eq!(p.sample(T0 + 1)[HadoopState::DeleteBlock], 3.0);
        // Horizon 3: the first two events age out after three more samples.
        assert_eq!(p.sample(T0 + 2)[HadoopState::DeleteBlock], 3.0);
        assert_eq!(p.sample(T0 + 3)[HadoopState::DeleteBlock], 1.0);
        assert_eq!(p.sample(T0 + 4)[HadoopState::DeleteBlock], 0.0);
    }

    #[test]
    fn unmatched_end_events_are_ignored() {
        let mut p = LogParser::new();
        p.feed_line(&dn(T0, "Served block blk_-404"));
        p.feed_line(&tt(T0, "TaskTracker: Task task_0001_m_000000_0 is done."));
        let v = p.sample(T0);
        assert_eq!(v.total(), 0.0);
        // Counts never go negative.
        assert!(v.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn memory_is_bounded_by_live_instances() {
        let mut p = LogParser::new();
        for i in 0..1000 {
            p.feed_line(&tt(
                T0 + i,
                &format!("TaskTracker: LaunchTaskAction: task_0001_m_{i:06}_0"),
            ));
            p.feed_line(&tt(
                T0 + i,
                &format!("TaskTracker: Task task_0001_m_{i:06}_0 is done."),
            ));
        }
        assert_eq!(p.live_instances(), 0);
        let (seen, parsed) = p.line_stats();
        assert_eq!(seen, 2000);
        assert_eq!(parsed, 2000);
    }

    #[test]
    fn feed_lines_batches() {
        let mut p = LogParser::new();
        let lines = [
            tt(T0, "TaskTracker: LaunchTaskAction: task_0001_m_000000_0"),
            "noise".to_owned(),
        ];
        p.feed_lines(lines.iter().map(String::as_str));
        assert_eq!(p.line_stats(), (2, 1));
        assert_eq!(p.sample(T0)[HadoopState::MapTask], 1.0);
    }
}
