//! Log-line → event extraction.
//!
//! Each Hadoop log entry corresponds to one event: a state-entrance, a
//! state-exit, or an instant event (paper §4.4). [`parse_line`] recognizes
//! the Hadoop 0.18 TaskTracker/DataNode formats and produces a
//! [`LogLineEvent`]; unrecognized lines yield `None` (real logs are full of
//! lines the DFA view does not care about, and the parser must skip them
//! silently).

use crate::states::HadoopState;

/// The edge direction of an extracted event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Entering the state.
    Start,
    /// Leaving the state.
    End,
    /// Instant entrance-and-exit (e.g. a block deletion).
    Instant,
}

/// One event extracted from one log line.
///
/// Borrows the instance key from the line it was parsed from, so the
/// per-line fast path allocates nothing; consumers that retain the key
/// beyond the line's lifetime copy it explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogLineEvent<'a> {
    /// Seconds-of-day of the log timestamp.
    pub time_secs: u64,
    /// Which state the event concerns.
    pub state: HadoopState,
    /// Entrance, exit, or instant.
    pub edge: Edge,
    /// The key identifying the state *instance*: a task attempt name for
    /// TaskTracker states, a block id for DataNode states.
    pub key: &'a str,
    /// Whether the line reports an attempt failure (ends every state held
    /// by the attempt, not just `state`).
    pub failure: bool,
    /// Whether the line reports a jobtracker kill (ends every state held,
    /// but does not count as a failure — e.g. a losing speculative
    /// attempt).
    pub killed: bool,
}

/// Parses a `YYYY-MM-DD HH:MM:SS,mmm` prefix into seconds-of-day.
///
/// Returns `None` when the prefix is not a well-formed timestamp.
pub fn parse_timestamp(line: &str) -> Option<u64> {
    // "2008-04-15 14:23:15,324" — 23 characters.
    let ts = line.get(0..23)?;
    let bytes = ts.as_bytes();
    if bytes.get(4) != Some(&b'-')
        || bytes.get(7) != Some(&b'-')
        || bytes.get(10) != Some(&b' ')
        || bytes.get(13) != Some(&b':')
        || bytes.get(16) != Some(&b':')
        || bytes.get(19) != Some(&b',')
    {
        return None;
    }
    let h: u64 = ts.get(11..13)?.parse().ok()?;
    let m: u64 = ts.get(14..16)?.parse().ok()?;
    let s: u64 = ts.get(17..19)?.parse().ok()?;
    if h > 23 || m > 59 || s > 59 {
        return None;
    }
    Some(h * 3600 + m * 60 + s)
}

/// Extracts the first whitespace-delimited token starting with `prefix`.
fn token_starting_with<'a>(line: &'a str, prefix: &str) -> Option<&'a str> {
    line.split_whitespace()
        .find(|t| t.starts_with(prefix))
        .map(|t| t.trim_end_matches(['.', ',', ':', ';']))
}

/// Extracts one event from a log line, if the line is one the white-box
/// DFA view cares about.
///
/// # Examples
///
/// ```
/// use hadoop_logs::event::{parse_line, Edge};
/// use hadoop_logs::states::HadoopState;
///
/// let line = "2008-04-15 14:23:15,324 INFO org.apache.hadoop.mapred.TaskTracker: \
///             LaunchTaskAction: task_0001_m_000096_0";
/// let ev = parse_line(line).unwrap();
/// assert_eq!(ev.state, HadoopState::MapTask);
/// assert_eq!(ev.edge, Edge::Start);
/// assert_eq!(ev.key, "task_0001_m_000096_0");
/// ```
pub fn parse_line(line: &str) -> Option<LogLineEvent<'_>> {
    let time_secs = parse_timestamp(line)?;
    let make = |state, edge, key, failure| {
        Some(LogLineEvent {
            time_secs,
            state,
            edge,
            key,
            failure,
            killed: false,
        })
    };

    // --- TaskTracker / task JVM lines -----------------------------------
    if line.contains("LaunchTaskAction:") {
        let attempt = token_starting_with(line, "task_")?;
        let state = kind_of_attempt(attempt)?;
        return make(state, Edge::Start, attempt, false);
    }
    if line.contains(" is done.") {
        let attempt = token_starting_with(line, "task_")?;
        let state = kind_of_attempt(attempt)?;
        return make(state, Edge::End, attempt, false);
    }
    if line.contains(" was killed.") {
        let attempt = token_starting_with(line, "task_")?;
        let state = kind_of_attempt(attempt)?;
        let mut ev = make(state, Edge::End, attempt, false)?;
        ev.killed = true;
        return Some(ev);
    }
    if line.contains("Copying of all map outputs complete") {
        let attempt = token_starting_with(line, "task_")?;
        return make(HadoopState::ReduceCopy, Edge::End, attempt, false);
    }
    if line.contains("Copying map outputs") {
        let attempt = token_starting_with(line, "task_")?;
        return make(HadoopState::ReduceCopy, Edge::Start, attempt, false);
    }
    if line.contains("Merging map outputs") {
        let attempt = token_starting_with(line, "task_")?;
        return make(HadoopState::ReduceSort, Edge::Start, attempt, false);
    }
    if line.contains("Merge complete, reducing") {
        // Exits the sort phase and enters the reducer phase; the parser
        // layer synthesizes the ReduceReducer entrance from this exit.
        let attempt = token_starting_with(line, "task_")?;
        return make(HadoopState::ReduceSort, Edge::End, attempt, false);
    }
    if line.contains(" WARN ") && line.contains("task_") {
        let attempt = token_starting_with(line, "task_")?;
        let state = kind_of_attempt(attempt)?;
        return make(state, Edge::End, attempt, true);
    }

    // --- DataNode lines ---------------------------------------------------
    if line.contains("Serving block") {
        let block = token_starting_with(line, "blk_")?;
        return make(HadoopState::ReadBlock, Edge::Start, block, false);
    }
    if line.contains("Served block") {
        let block = token_starting_with(line, "blk_")?;
        return make(HadoopState::ReadBlock, Edge::End, block, false);
    }
    if line.contains("Receiving block") {
        let block = token_starting_with(line, "blk_")?;
        return make(HadoopState::WriteBlock, Edge::Start, block, false);
    }
    if line.contains("Received block") {
        let block = token_starting_with(line, "blk_")?;
        return make(HadoopState::WriteBlock, Edge::End, block, false);
    }
    if line.contains("Deleting block") {
        let block = token_starting_with(line, "blk_")?;
        return make(HadoopState::DeleteBlock, Edge::Instant, block, false);
    }

    None
}

/// Maps an attempt name to the coarse task state (MapTask / ReduceTask).
fn kind_of_attempt(attempt: &str) -> Option<HadoopState> {
    // task_<job>_<m|r>_<index>_<attempt>
    let mut parts = attempt.split('_');
    let _ = parts.next()?; // "task"
    let _ = parts.next()?; // job
    match parts.next()? {
        "m" => Some(HadoopState::MapTask),
        "r" => Some(HadoopState::ReduceTask),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TS: &str = "2008-04-15 14:23:15,324";

    /// Leaked so the returned event (which borrows its key from the line)
    /// can outlive the call expression.
    fn line(body: &str) -> &'static str {
        Box::leak(format!("{TS} {body}").into_boxed_str())
    }

    #[test]
    fn timestamp_parsing() {
        assert_eq!(parse_timestamp(line("x")), Some(14 * 3600 + 23 * 60 + 15));
        assert_eq!(parse_timestamp("2008-04-15 00:00:00,000 x"), Some(0));
        assert_eq!(parse_timestamp("garbage"), None);
        assert_eq!(parse_timestamp("2008-04-15 25:00:00,000 x"), None);
        assert_eq!(parse_timestamp(""), None);
        assert_eq!(parse_timestamp("2008-04-15T14:23:15,324 x"), None);
    }

    #[test]
    fn map_launch_and_done() {
        let ev = parse_line(line(
            "INFO org.apache.hadoop.mapred.TaskTracker: LaunchTaskAction: task_0001_m_000096_0",
        ))
        .unwrap();
        assert_eq!(
            (ev.state, ev.edge, ev.failure),
            (HadoopState::MapTask, Edge::Start, false)
        );
        let ev = parse_line(line(
            "INFO org.apache.hadoop.mapred.TaskTracker: Task task_0001_m_000096_0 is done.",
        ))
        .unwrap();
        assert_eq!((ev.state, ev.edge), (HadoopState::MapTask, Edge::End));
        assert_eq!(ev.key, "task_0001_m_000096_0");
    }

    #[test]
    fn reduce_lifecycle_events() {
        let launch = parse_line(line(
            "INFO org.apache.hadoop.mapred.TaskTracker: LaunchTaskAction: task_0001_r_000003_0",
        ))
        .unwrap();
        assert_eq!(
            (launch.state, launch.edge),
            (HadoopState::ReduceTask, Edge::Start)
        );

        let copy = parse_line(line(
            "INFO org.apache.hadoop.mapred.ReduceTask: task_0001_r_000003_0 Copying map outputs",
        ))
        .unwrap();
        assert_eq!(
            (copy.state, copy.edge),
            (HadoopState::ReduceCopy, Edge::Start)
        );

        let copy_done = parse_line(line(
            "INFO org.apache.hadoop.mapred.ReduceTask: task_0001_r_000003_0 Copying of all map outputs complete",
        ))
        .unwrap();
        assert_eq!(
            (copy_done.state, copy_done.edge),
            (HadoopState::ReduceCopy, Edge::End)
        );

        let sort = parse_line(line(
            "INFO org.apache.hadoop.mapred.ReduceTask: task_0001_r_000003_0 Merging map outputs",
        ))
        .unwrap();
        assert_eq!(
            (sort.state, sort.edge),
            (HadoopState::ReduceSort, Edge::Start)
        );

        let sort_done = parse_line(line(
            "INFO org.apache.hadoop.mapred.ReduceTask: task_0001_r_000003_0 Merge complete, reducing",
        ))
        .unwrap();
        assert_eq!(
            (sort_done.state, sort_done.edge),
            (HadoopState::ReduceSort, Edge::End)
        );
    }

    #[test]
    fn failure_lines_end_the_task_state() {
        let ev = parse_line(line(
            "WARN org.apache.hadoop.mapred.TaskRunner: task_0002_r_000001_3 Map output copy failure: java.io.IOException: failed to rename map output",
        ))
        .unwrap();
        assert!(ev.failure);
        assert_eq!((ev.state, ev.edge), (HadoopState::ReduceTask, Edge::End));
        assert_eq!(ev.key, "task_0002_r_000001_3");
    }

    #[test]
    fn datanode_block_events() {
        let s = parse_line(line(
            "INFO org.apache.hadoop.dfs.DataNode: Serving block blk_-42 to /10.1.0.5",
        ))
        .unwrap();
        assert_eq!((s.state, s.edge), (HadoopState::ReadBlock, Edge::Start));
        assert_eq!(s.key, "blk_-42");

        let e = parse_line(line(
            "INFO org.apache.hadoop.dfs.DataNode: Served block blk_-42",
        ))
        .unwrap();
        assert_eq!((e.state, e.edge), (HadoopState::ReadBlock, Edge::End));

        let r = parse_line(line(
            "INFO org.apache.hadoop.dfs.DataNode: Receiving block blk_7 src: /10.1.0.4",
        ))
        .unwrap();
        assert_eq!((r.state, r.edge), (HadoopState::WriteBlock, Edge::Start));

        let rd = parse_line(line(
            "INFO org.apache.hadoop.dfs.DataNode: Received block blk_7 of size 67108864",
        ))
        .unwrap();
        assert_eq!((rd.state, rd.edge), (HadoopState::WriteBlock, Edge::End));

        let d = parse_line(line(
            "INFO org.apache.hadoop.dfs.DataNode: Deleting block blk_9 file dfs/data/current/blk_9",
        ))
        .unwrap();
        assert_eq!((d.state, d.edge), (HadoopState::DeleteBlock, Edge::Instant));
        assert_eq!(d.key, "blk_9");
    }

    #[test]
    fn irrelevant_lines_are_skipped() {
        for body in [
            "INFO org.apache.hadoop.mapred.TaskTracker: heartbeat",
            "INFO org.apache.hadoop.dfs.DataNode: starting up",
            "DEBUG noise",
            "",
        ] {
            assert_eq!(parse_line(line(body)), None, "should skip: {body}");
        }
        // No timestamp at all:
        assert_eq!(parse_line("LaunchTaskAction: task_0001_m_000001_0"), None);
    }

    #[test]
    fn malformed_attempt_names_are_skipped() {
        assert_eq!(
            parse_line(line(
                "INFO org.apache.hadoop.mapred.TaskTracker: LaunchTaskAction: task_0001_x_000001_0"
            )),
            None
        );
    }
}
