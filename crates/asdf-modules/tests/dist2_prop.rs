//! Property tests pinning `dist2_bounded` to `dist2` — the *reference-only*
//! left-to-right pair.
//!
//! The hot paths (training k-means and the online knn module) now run on
//! the 4-lane kernels in `asdf_modules::kernel`, which have their own
//! bitwise pinning suite in `kernel_prop.rs`; `dist2`/`dist2_bounded`
//! survive as the historical serial-fold reference and as the scalar
//! baseline the perfsuite's SIMD gate measures against. Two contracts
//! hold over NaN-free inputs:
//!
//! * **bound miss** — when the true distance stays below the bound, the
//!   bounded kernel completes and its result is *bit-identical* to
//!   `dist2` (same left-to-right accumulation order);
//! * **bound hit** — when the running sum reaches the bound, the partial
//!   sum returned is `>= bound`, which is all a caller may rely on when
//!   discarding a candidate.

use asdf_modules::training::{dist2, dist2_bounded};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::Strategy;

/// Paired equal-length vectors of finite components, spanning several
/// early-exit chunk boundaries (the kernel checks its bound every 16
/// components).
fn arb_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (0usize..100).prop_flat_map(|len| {
        (
            vec(-1.0e3..1.0e3, len..len + 1),
            vec(-1.0e3..1.0e3, len..len + 1),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn unbounded_is_bit_identical_to_dist2((a, b) in arb_pair()) {
        let exact = dist2(&a, &b);
        // An infinite bound can never be hit, so the computation always
        // completes.
        prop_assert_eq!(dist2_bounded(&a, &b, f64::INFINITY).to_bits(), exact.to_bits());
    }

    #[test]
    fn bound_miss_completes_bit_identically((a, b) in arb_pair()) {
        let exact = dist2(&a, &b);
        // Any bound strictly above the true distance is never reached.
        let bound = exact + 1.0;
        prop_assert_eq!(dist2_bounded(&a, &b, bound).to_bits(), exact.to_bits());
    }

    #[test]
    fn bound_hit_returns_at_least_the_bound(
        (a, b) in arb_pair(),
        frac in 0.0f64..1.0,
    ) {
        let exact = dist2(&a, &b);
        // A bound at or below the true distance is always hit eventually
        // (at the latest when the final sum reaches it).
        let bound = exact * frac;
        let got = dist2_bounded(&a, &b, bound);
        prop_assert!(got >= bound, "got {got}, bound {bound}, exact {exact}");
        // The partial sum never overshoots the completed sum: squared
        // terms are non-negative, so prefixes are monotone.
        prop_assert!(got <= exact, "got {got} > exact {exact}");
    }

    #[test]
    fn zero_bound_exits_on_the_first_chunk((a, b) in arb_pair()) {
        let got = dist2_bounded(&a, &b, 0.0);
        // The first chunk's partial sum already satisfies a zero bound.
        let first_chunk = a
            .iter()
            .zip(&b)
            .take(16)
            .map(|(x, y)| (x - y) * (x - y))
            .fold(0.0f64, |acc, t| acc + t);
        prop_assert_eq!(got.to_bits(), first_chunk.to_bits());
    }
}

#[test]
fn empty_inputs_are_zero() {
    assert_eq!(dist2(&[], &[]), 0.0);
    assert_eq!(dist2_bounded(&[], &[], f64::INFINITY), 0.0);
    // A zero bound on empty input still returns the (empty) sum.
    assert_eq!(dist2_bounded(&[], &[], 0.0), 0.0);
}
