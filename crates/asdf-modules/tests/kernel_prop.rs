//! Property tests pinning the SIMD-friendly kernels to the 4-lane scalar
//! reference, bitwise.
//!
//! The lane fold (lane `j` accumulates components `j, j+4, j+8, ...`;
//! total = `(acc0 + acc1) + (acc2 + acc3)`) is the canonical
//! squared-distance semantics of the workspace. `ref_dist2_lane4` below is
//! an independent re-implementation of that contract; every kernel entry
//! point — [`kernel::dist2_x4`], [`kernel::dist2_bounded_x4`] (both over
//! raw slices and over zero-padded block/query views), and the fused
//! [`kernel::argmin_dist2`] — must match it bit for bit across dimensions
//! 0..200, non-multiple-of-4 tails included, and at the `bound = 0.0` /
//! `bound = INFINITY` early-exit edges.

use asdf_modules::kernel::{self, AlignedVec, CentroidBlock};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::Strategy;

/// Independent 4-lane scalar reference: the accumulation-order contract,
/// written the slow obvious way.
fn ref_dist2_lane4(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let d = x - y;
        acc[i % 4] += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Paired equal-length vectors of finite components spanning dims 0..200,
/// so every tail residue mod 4 and several 16-component bound chunks are
/// exercised.
fn arb_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (0usize..200).prop_flat_map(|len| {
        (
            vec(-1.0e3..1.0e3, len..len + 1),
            vec(-1.0e3..1.0e3, len..len + 1),
        )
    })
}

/// A query plus a non-empty block of same-dimension candidate rows.
fn arb_scan() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<f64>>)> {
    (0usize..64).prop_flat_map(|dim| {
        (
            vec(-50.0..50.0, dim..dim + 1),
            vec(vec(-50.0..50.0, dim..dim + 1), 1..12),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn dist2_x4_is_bit_identical_to_the_lane4_reference((a, b) in arb_pair()) {
        prop_assert_eq!(
            kernel::dist2_x4(&a, &b).to_bits(),
            ref_dist2_lane4(&a, &b).to_bits()
        );
    }

    #[test]
    fn padded_views_do_not_change_the_bits((a, b) in arb_pair()) {
        // Zero padding contributes exact +0.0 terms to non-negative lane
        // accumulators, so the padded full-stride scan is bit-identical.
        let exact = ref_dist2_lane4(&a, &b);
        let q = AlignedVec::from_slice(&a);
        let block = CentroidBlock::from_rows(std::slice::from_ref(&b));
        prop_assert_eq!(
            kernel::dist2_x4(q.as_padded(), block.row_padded(0)).to_bits(),
            exact.to_bits()
        );
        prop_assert_eq!(
            kernel::dist2_bounded_x4(q.as_padded(), block.row_padded(0), f64::INFINITY)
                .to_bits(),
            exact.to_bits()
        );
    }

    #[test]
    fn bounded_with_infinite_bound_is_bit_identical((a, b) in arb_pair()) {
        let exact = ref_dist2_lane4(&a, &b);
        prop_assert_eq!(
            kernel::dist2_bounded_x4(&a, &b, f64::INFINITY).to_bits(),
            exact.to_bits()
        );
    }

    #[test]
    fn bound_miss_completes_bit_identically((a, b) in arb_pair()) {
        let exact = ref_dist2_lane4(&a, &b);
        // Any bound strictly above the true distance is never reached.
        prop_assert_eq!(
            kernel::dist2_bounded_x4(&a, &b, exact + 1.0).to_bits(),
            exact.to_bits()
        );
    }

    #[test]
    fn bound_hit_returns_a_monotone_partial_sum(
        (a, b) in arb_pair(),
        frac in 0.0f64..1.0,
    ) {
        let exact = ref_dist2_lane4(&a, &b);
        let bound = exact * frac;
        let got = kernel::dist2_bounded_x4(&a, &b, bound);
        prop_assert!(got >= bound, "got {got}, bound {bound}, exact {exact}");
        // Partial lane folds never overshoot the completed sum: lane
        // accumulators are monotone in non-negative terms, and the fold of
        // non-negative lanes is monotone in each lane.
        prop_assert!(got <= exact, "got {got} > exact {exact}");
    }

    #[test]
    fn zero_bound_exits_on_the_first_chunk((a, b) in arb_pair()) {
        // The first 16-component group's partial fold already satisfies a
        // zero bound (it is >= 0), so that fold is what comes back.
        let n = a.len().min(16);
        let expect = ref_dist2_lane4(&a[..n], &b[..n]);
        prop_assert_eq!(
            kernel::dist2_bounded_x4(&a, &b, 0.0).to_bits(),
            expect.to_bits()
        );
    }

    #[test]
    fn fused_argmin_matches_the_reference_scan((q, rows) in arb_scan()) {
        let block = CentroidBlock::from_rows(&rows);
        // Reference: lowest index of the minimum lane-fold distance.
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, row) in rows.iter().enumerate() {
            let d = ref_dist2_lane4(&q, row);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        // Unpadded query path.
        prop_assert_eq!(kernel::argmin_dist2(&q, &block), best);
        // Padded full-stride query path.
        let aligned = AlignedVec::from_slice(&q);
        prop_assert_eq!(kernel::argmin_dist2(aligned.as_padded(), &block), best);
    }

    #[test]
    fn fused_argmin_ties_keep_the_lowest_index(
        (q, mut rows) in arb_scan(),
        dup in 0usize..12,
    ) {
        // Duplicate one row at the end: identical rows produce identical
        // distance bits, so the earlier index must win.
        let dup = dup % rows.len();
        rows.push(rows[dup].clone());
        let block = CentroidBlock::from_rows(&rows);
        // The trailing duplicate can never win: its distance bits equal its
        // original's, and the original has the lower index.
        let got = kernel::argmin_dist2(&q, &block);
        prop_assert!(
            got < rows.len() - 1,
            "tie broke toward the duplicated trailing row ({got})"
        );
    }

    #[test]
    fn centroid_block_round_trips(rows in vec(vec(-1.0e6f64..1.0e6, 0..37), 0..20)) {
        // Ragged inputs are rejected elsewhere; make the rows uniform.
        let dim = rows.first().map_or(0, Vec::len);
        let rows: Vec<Vec<f64>> = rows
            .into_iter()
            .map(|mut r| { r.resize(dim, 0.0); r })
            .collect();
        let block = CentroidBlock::from_rows(&rows);
        prop_assert_eq!(block.len(), rows.len());
        prop_assert_eq!(block.dim(), dim);
        // build from rows → iterate rows → equal.
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(block.row(i), row.as_slice());
        }
        let collected: Vec<Vec<f64>> = block.rows().map(<[f64]>::to_vec).collect();
        prop_assert_eq!(&collected, &rows);
        prop_assert_eq!(&block.to_rows(), &rows);
        // Incremental construction agrees with bulk construction.
        let mut pushed = CentroidBlock::with_dim(dim);
        for row in &rows {
            pushed.push_row(row);
        }
        prop_assert_eq!(&pushed, &block);
        // The padded views expose only zeros past `dim`.
        for i in 0..block.len() {
            prop_assert!(block.row_padded(i)[dim..].iter().all(|&x| x == 0.0));
        }
    }
}

#[test]
fn empty_inputs_are_zero() {
    assert_eq!(kernel::dist2_x4(&[], &[]), 0.0);
    assert_eq!(kernel::dist2_bounded_x4(&[], &[], f64::INFINITY), 0.0);
    // A zero bound on empty input still returns the (empty) fold.
    assert_eq!(kernel::dist2_bounded_x4(&[], &[], 0.0), 0.0);
    assert_eq!(kernel::dist2_x4(&[], &[]).to_bits(), 0.0f64.to_bits());
}
