//! Property test: `mavgvec`'s windowed statistics match a direct
//! computation for arbitrary input streams and window geometry.

use asdf_core::config::{Config, InstanceConfig};
use asdf_core::dag::Dag;
use asdf_core::engine::TickEngine;
use asdf_core::error::ModuleError;
use asdf_core::module::{InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::registry::ModuleRegistry;
use asdf_core::time::TickDuration;
use proptest::prelude::*;

/// Replays a fixed sequence of vectors, one per second.
struct Replay {
    data: Vec<Vec<f64>>,
    idx: usize,
    port: Option<PortId>,
}

impl Module for Replay {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.port = Some(ctx.declare_output("out"));
        ctx.request_periodic(TickDuration::SECOND);
        Ok(())
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
        if self.idx < self.data.len() {
            ctx.emit(self.port.unwrap(), self.data[self.idx].clone());
            self.idx += 1;
        }
        Ok(())
    }
}

fn expected_windows(data: &[Vec<f64>], window: usize, slide: usize) -> Vec<(Vec<f64>, Vec<f64>)> {
    let mut out = Vec::new();
    let mut since = 0;
    for end in 0..data.len() {
        since += 1;
        if end + 1 >= window && since >= slide {
            since = 0;
            let win = &data[end + 1 - window..=end];
            let dim = win[0].len();
            let n = window as f64;
            let mut mean = vec![0.0; dim];
            for v in win {
                for (m, x) in mean.iter_mut().zip(v) {
                    *m += x;
                }
            }
            for m in &mut mean {
                *m /= n;
            }
            let mut sd = vec![0.0; dim];
            for v in win {
                for ((s, m), x) in sd.iter_mut().zip(&mean).zip(v) {
                    let d = x - m;
                    *s += d * d;
                }
            }
            for s in &mut sd {
                *s = (*s / n).sqrt();
            }
            out.push((mean, sd));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn windowed_stats_match_direct_computation(
        data in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 3),
            4..40,
        ),
        window in 1usize..8,
        slide in 1usize..8,
    ) {
        let data_clone = data.clone();
        let mut reg = ModuleRegistry::new();
        asdf_modules::register_analysis_modules(&mut reg);
        reg.register("replay", move || {
            Box::new(Replay {
                data: data_clone.clone(),
                idx: 0,
                port: None,
            })
        });
        let mut cfg = Config::new();
        cfg.push(InstanceConfig::new("replay", "src")).unwrap();
        cfg.push(
            InstanceConfig::new("mavgvec", "avg")
                .with_param("window", window)
                .with_param("slide", slide)
                .with_param("emit", "both")
                .with_input("input", "src", "out"),
        )
        .unwrap();
        let dag = Dag::build(&reg, &cfg).expect("builds");
        let mut engine = TickEngine::new(dag);
        let tap = engine.tap("avg").unwrap();
        engine
            .run_for(TickDuration::from_secs(data.len() as u64))
            .expect("runs");

        let envs = tap.drain();
        let got_means: Vec<Vec<f64>> = envs
            .iter()
            .filter(|e| e.source.name == "mean")
            .map(|e| e.sample.value.as_vector().unwrap().to_vec())
            .collect();
        let got_sds: Vec<Vec<f64>> = envs
            .iter()
            .filter(|e| e.source.name == "stddev")
            .map(|e| e.sample.value.as_vector().unwrap().to_vec())
            .collect();

        let expected = expected_windows(&data, window, slide);
        prop_assert_eq!(got_means.len(), expected.len(), "window count");
        prop_assert_eq!(got_sds.len(), expected.len());
        for ((gm, gs), (em, es)) in got_means.iter().zip(&got_sds).zip(&expected) {
            for (a, b) in gm.iter().zip(em) {
                prop_assert!((a - b).abs() < 1e-9, "mean {a} vs {b}");
            }
            for (a, b) in gs.iter().zip(es) {
                prop_assert!((a - b).abs() < 1e-9, "stddev {a} vs {b}");
            }
        }
    }
}
