//! Property test: tree-reducing per-rack summaries is bitwise equal to
//! the flat fleet-wide computation — for any node count, rack partition,
//! merge tree shape, window geometry, and NaN-free metric values.
//!
//! This is the contract the fleet diagnosis path rests on: `rack_agg`
//! computes per-node windowed means rack-locally, the rack-mode
//! `metric_rank` concatenates summaries back into the flat mean matrix,
//! and the peer baseline/MAD it computes must match what the flat wiring
//! would have produced, to the last bit.

use asdf_modules::kernel::CentroidBlock;
use asdf_modules::rack::{peer_baseline_into, windowed_mean_into, RackSummary};
use proptest::prelude::*;

/// Per-node windowed means for a contiguous node range, with the shared
/// arithmetic (exactly what one `rack_agg` instance computes).
fn summarize(
    samples: &[Vec<Vec<f64>>],
    range: std::ops::Range<usize>,
    window: usize,
) -> RackSummary {
    let dim = samples[0][0].len();
    let mut s = RackSummary {
        n_nodes: range.len(),
        dim,
        means: vec![0.0; range.len() * dim],
    };
    for (local, node) in range.enumerate() {
        windowed_mean_into(
            samples[node].iter().map(|r| r.as_slice()),
            window,
            &mut s.means[local * dim..][..dim],
        );
    }
    s
}

/// Merges partials pairwise as a balanced tree (vs the flat left fold).
fn tree_merge(parts: &[RackSummary]) -> RackSummary {
    match parts.len() {
        0 => RackSummary {
            n_nodes: 0,
            dim: 0,
            means: Vec::new(),
        },
        1 => parts[0].clone(),
        n => {
            let (l, r) = parts.split_at(n / 2);
            RackSummary::merge(&[tree_merge(l), tree_merge(r)])
        }
    }
}

fn peer_stats(means: &CentroidBlock, dim: usize) -> (Vec<f64>, Vec<f64>) {
    let mut baseline = vec![0.0; dim];
    let mut mad = vec![0.0; dim];
    let mut col = Vec::new();
    peer_baseline_into(means, &mut baseline, &mut mad, &mut col);
    (baseline, mad)
}

/// Random fleet geometry + metric values: node count, metric width,
/// window length, rack-size seeds, and a flat NaN-free value pool.
fn arb_case() -> impl Strategy<Value = (usize, usize, usize, Vec<usize>, Vec<f64>)> {
    (3usize..17, 1usize..7, 1usize..6).prop_flat_map(|(n, d, w)| {
        (
            n..n + 1,
            d..d + 1,
            w..w + 1,
            proptest::collection::vec(1usize..5, n..n + 1),
            proptest::collection::vec(-1.0e6f64..1.0e6, n * w * d..n * w * d + 1),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_reduce_is_bitwise_equal_to_flat(
        (n_nodes, dim, window, rack_sizes, flat_values) in arb_case()
    ) {
        // Samples[node][row][metric], window rows per node.
        let samples: Vec<Vec<Vec<f64>>> = (0..n_nodes)
            .map(|node| {
                (0..window)
                    .map(|r| {
                        let at = (node * window + r) * dim;
                        flat_values[at..at + dim].to_vec()
                    })
                    .collect()
            })
            .collect();

        // Contiguous rack partition from the random sizes (trimmed to
        // cover exactly n_nodes; the tail rack absorbs the remainder).
        let mut racks: Vec<std::ops::Range<usize>> = Vec::new();
        let mut at = 0;
        for sz in rack_sizes {
            if at >= n_nodes {
                break;
            }
            let end = (at + sz).min(n_nodes);
            racks.push(at..end);
            at = end;
        }
        if at < n_nodes {
            racks.push(at..n_nodes);
        }

        // Flat path: one pass over every node.
        let flat = summarize(&samples, 0..n_nodes, window);
        let flat_block = CentroidBlock::from_rows(
            &(0..n_nodes)
                .map(|i| flat.means[i * dim..][..dim].to_vec())
                .collect::<Vec<_>>(),
        );
        let (flat_base, flat_mad) = peer_stats(&flat_block, dim);

        // Rack path: per-rack partials, merged both as a left fold and as
        // a balanced tree, with an encode/decode round trip in between
        // (the DAG ships summaries as flat rows).
        let partials: Vec<RackSummary> = racks
            .iter()
            .map(|r| {
                let s = summarize(&samples, r.clone(), window);
                let mut row = Vec::new();
                s.encode_into(&mut row);
                RackSummary::decode(&row).expect("round trip")
            })
            .collect();
        let folded = RackSummary::merge(&partials);
        let treed = tree_merge(&partials);
        prop_assert_eq!(&folded, &treed);
        prop_assert_eq!(&folded.means, &flat.means);
        prop_assert_eq!(folded.n_nodes, n_nodes);

        let merged_block = CentroidBlock::from_rows(
            &(0..n_nodes)
                .map(|i| folded.means[i * dim..][..dim].to_vec())
                .collect::<Vec<_>>(),
        );
        let (rack_base, rack_mad) = peer_stats(&merged_block, dim);
        // Bitwise: the values are NaN-free, so == is exact equality.
        prop_assert_eq!(flat_base, rack_base);
        prop_assert_eq!(flat_mad, rack_mad);
    }
}
