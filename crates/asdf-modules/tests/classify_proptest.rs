//! Property tests: the optimized classification paths (early-exit fused
//! argmin, single-distance ranking, and the buffer-reusing [`Classifier`]
//! context) agree with a naive reference implementation, including on
//! exact distance ties and zero-σ scaling components.
//!
//! The reference distance is [`kernel::dist2_x4`] — the canonical 4-lane
//! scalar fold the SIMD paths are pinned against (see `kernel_prop.rs`) —
//! so these tests isolate the *selection* logic (argmin, ranking, tie
//! breaks, buffer reuse) from accumulation-order concerns.

use asdf_modules::kernel::{self, CentroidBlock};
use asdf_modules::training::{scale_log, BlackBoxModel, Classifier};
use proptest::prelude::*;

/// Chosen to leave a remainder chunk in both the early-exit distance
/// kernel (bound checks every 16 components) and the 4-lane fold.
const DIM: usize = 19;

/// Reference 1-NN: scale by division, then the double-distance `min_by`
/// scan the optimized path replaced.
fn naive_classify(model: &BlackBoxModel, raw: &[f64]) -> usize {
    let x = scale_log(raw, &model.stddev);
    (0..model.centroids.len())
        .min_by(|&i, &j| {
            kernel::dist2_x4(&x, model.centroids.row(i))
                .partial_cmp(&kernel::dist2_x4(&x, model.centroids.row(j)))
                .expect("finite")
        })
        .expect("non-empty")
}

/// Reference k-NN: stable index sort recomputing distances in the
/// comparator (ties keep the lower index, like the optimized path).
fn naive_classify_k(model: &BlackBoxModel, raw: &[f64], k: usize) -> Vec<usize> {
    let x = scale_log(raw, &model.stddev);
    let mut idx: Vec<usize> = (0..model.centroids.len()).collect();
    idx.sort_by(|&i, &j| {
        kernel::dist2_x4(&x, model.centroids.row(i))
            .partial_cmp(&kernel::dist2_x4(&x, model.centroids.row(j)))
            .expect("finite")
    });
    idx.truncate(k);
    idx
}

fn model_from(centroids: &[Vec<f64>], stddev: Vec<f64>) -> BlackBoxModel {
    BlackBoxModel {
        stddev,
        centroids: CentroidBlock::from_rows(centroids),
    }
}

fn ctx_classify_k(ctx: &mut Classifier, raw: &[f64], k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    ctx.classify_k_into(raw, k, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four optimized entry points against the reference, with σ drawn
    /// from {0} ∪ powers of two so the `Classifier`'s reciprocal multiply
    /// is bit-identical to the reference's division (zero exercises the
    /// clamp-to-1 branch), and with the first centroid duplicated so exact
    /// distance ties occur on every case.
    #[test]
    fn optimized_paths_match_naive_reference(
        mut centroids in proptest::collection::vec(
            proptest::collection::vec(-40.0f64..40.0, DIM),
            2..6,
        ),
        sigma_idx in proptest::collection::vec(0usize..6, DIM),
        raws in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..2000.0, DIM),
            1..10,
        ),
        k_pick in 0usize..64,
    ) {
        centroids.push(centroids[0].clone());
        let stddev: Vec<f64> = sigma_idx
            .iter()
            .map(|&i| [0.0, 0.25, 0.5, 1.0, 2.0, 4.0][i])
            .collect();
        let model = model_from(&centroids, stddev);
        let k = 1 + k_pick % model.centroids.len();
        let mut ctx = model.clone().into_classifier();
        let mut buf = Vec::new();
        for raw in &raws {
            prop_assert_eq!(model.classify(raw), naive_classify(&model, raw));
            model.classify_k_into(raw, k, &mut buf);
            prop_assert_eq!(&buf, &naive_classify_k(&model, raw, k));
            prop_assert_eq!(ctx.classify(raw), naive_classify(&model, raw));
            prop_assert_eq!(
                ctx_classify_k(&mut ctx, raw, k),
                naive_classify_k(&model, raw, k)
            );
        }
    }

    /// The division-scaled model paths for arbitrary continuous σ (the
    /// early-exit argmin and single-distance sort are exact regardless of
    /// the scaling values).
    #[test]
    fn model_paths_match_for_arbitrary_sigma(
        centroids in proptest::collection::vec(
            proptest::collection::vec(-40.0f64..40.0, DIM),
            1..7,
        ),
        stddev in proptest::collection::vec(0.01f64..5.0, DIM),
        raw in proptest::collection::vec(0.0f64..2000.0, DIM),
    ) {
        let model = model_from(&centroids, stddev);
        prop_assert_eq!(model.classify(&raw), naive_classify(&model, &raw));
        let k = model.centroids.len();
        let mut buf = Vec::new();
        model.classify_k_into(&raw, k, &mut buf);
        prop_assert_eq!(buf, naive_classify_k(&model, &raw, k));
    }

    /// `classify_k_into` is insensitive to the reused buffer's prior
    /// contents and capacity — model and classifier context agree through
    /// arbitrary dirty buffers.
    #[test]
    fn classify_k_into_ignores_prior_buffer_contents(
        centroids in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, DIM),
            1..5,
        ),
        raw in proptest::collection::vec(0.0f64..100.0, DIM),
        garbage in proptest::collection::vec(0usize..1000, 0..32),
    ) {
        let model = model_from(&centroids, vec![1.0; DIM]);
        let k = model.centroids.len();
        let mut want = Vec::new();
        model.classify_k_into(&raw, k, &mut want);
        let mut dirty = garbage.clone();
        model.classify_k_into(&raw, k, &mut dirty);
        prop_assert_eq!(&dirty, &want);
        let mut ctx = model.into_classifier();
        let mut got = garbage;
        ctx.classify_k_into(&raw, k, &mut got);
        prop_assert_eq!(got, want);
    }
}
