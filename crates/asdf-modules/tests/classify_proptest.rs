//! Property tests: the optimized classification paths (early-exit argmin,
//! single-distance ranking, and the buffer-reusing [`Classifier`] context)
//! agree with a naive reference implementation, including on exact
//! distance ties and zero-σ scaling components.

use asdf_modules::training::{scale_log, BlackBoxModel};
use proptest::prelude::*;

/// Chosen to leave a remainder chunk in the early-exit distance kernel
/// (which accumulates in blocks of 16).
const DIM: usize = 19;

fn naive_dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Reference 1-NN: scale by division, then the double-`dist2` `min_by`
/// scan the optimized path replaced.
fn naive_classify(model: &BlackBoxModel, raw: &[f64]) -> usize {
    let x = scale_log(raw, &model.stddev);
    (0..model.centroids.len())
        .min_by(|&i, &j| {
            naive_dist2(&x, &model.centroids[i])
                .partial_cmp(&naive_dist2(&x, &model.centroids[j]))
                .expect("finite")
        })
        .expect("non-empty")
}

/// Reference k-NN: stable index sort recomputing distances in the
/// comparator (ties keep the lower index, like the optimized path).
fn naive_classify_k(model: &BlackBoxModel, raw: &[f64], k: usize) -> Vec<usize> {
    let x = scale_log(raw, &model.stddev);
    let mut idx: Vec<usize> = (0..model.centroids.len()).collect();
    idx.sort_by(|&i, &j| {
        naive_dist2(&x, &model.centroids[i])
            .partial_cmp(&naive_dist2(&x, &model.centroids[j]))
            .expect("finite")
    });
    idx.truncate(k);
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four optimized entry points against the reference, with σ drawn
    /// from {0} ∪ powers of two so the `Classifier`'s reciprocal multiply
    /// is bit-identical to the reference's division (zero exercises the
    /// clamp-to-1 branch), and with the first centroid duplicated so exact
    /// distance ties occur on every case.
    #[test]
    fn optimized_paths_match_naive_reference(
        mut centroids in proptest::collection::vec(
            proptest::collection::vec(-40.0f64..40.0, DIM),
            2..6,
        ),
        sigma_idx in proptest::collection::vec(0usize..6, DIM),
        raws in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..2000.0, DIM),
            1..10,
        ),
        k_pick in 0usize..64,
    ) {
        centroids.push(centroids[0].clone());
        let stddev: Vec<f64> = sigma_idx
            .iter()
            .map(|&i| [0.0, 0.25, 0.5, 1.0, 2.0, 4.0][i])
            .collect();
        let model = BlackBoxModel { stddev, centroids };
        let k = 1 + k_pick % model.centroids.len();
        let mut ctx = model.clone().into_classifier();
        for raw in &raws {
            prop_assert_eq!(model.classify(raw), naive_classify(&model, raw));
            prop_assert_eq!(model.classify_k(raw, k), naive_classify_k(&model, raw, k));
            prop_assert_eq!(ctx.classify(raw), naive_classify(&model, raw));
            let got: Vec<usize> = ctx.classify_k(raw, k).collect();
            prop_assert_eq!(got, naive_classify_k(&model, raw, k));
        }
    }

    /// The division-scaled model paths for arbitrary continuous σ (the
    /// early-exit argmin and single-distance sort are exact regardless of
    /// the scaling values).
    #[test]
    fn model_paths_match_for_arbitrary_sigma(
        centroids in proptest::collection::vec(
            proptest::collection::vec(-40.0f64..40.0, DIM),
            1..7,
        ),
        stddev in proptest::collection::vec(0.01f64..5.0, DIM),
        raw in proptest::collection::vec(0.0f64..2000.0, DIM),
    ) {
        let model = BlackBoxModel { stddev, centroids };
        prop_assert_eq!(model.classify(&raw), naive_classify(&model, &raw));
        let k = model.centroids.len();
        prop_assert_eq!(model.classify_k(&raw, k), naive_classify_k(&model, &raw, k));
    }
}
