//! The `print` alarm-sink module.
//!
//! The terminal vertex of the paper's DAGs (`BlackBoxAlarm`,
//! `DataNodeAlarm`): consumes fingerpointing alarms and renders them for
//! the administrator. Rendered lines are re-emitted on a `log` output so
//! taps (and downstream sinks) can observe them; with `stdout = true` they
//! are also printed.
//!
//! Configuration parameters:
//!
//! * `stdout` — print rendered lines to standard output (default `false`);
//! * `only_alarms` — render only `Bool(true)` samples (default `true`:
//!   quiet when the cluster is healthy).

use asdf_core::error::ModuleError;
use asdf_core::module::{InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::value::Value;

/// Alarm sink: formats incoming samples as human-readable alert lines.
#[derive(Debug, Default)]
pub struct Print {
    stdout: bool,
    only_alarms: bool,
    out: Option<PortId>,
    rendered: u64,
}

impl Print {
    /// Creates an unconfigured instance.
    pub fn new() -> Self {
        Print::default()
    }
}

impl Module for Print {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.stdout = ctx.parse_param_or("stdout", false)?;
        self.only_alarms = ctx.parse_param_or("only_alarms", true)?;
        if ctx.input_slots().is_empty() {
            return Err(ModuleError::BadInputs(
                "print needs at least one input".into(),
            ));
        }
        self.out = Some(ctx.declare_output("log"));
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        let port = self.out.expect("initialized");
        for (_, env) in ctx.take_all() {
            let is_alarm = matches!(env.sample.value, Value::Bool(true));
            if self.only_alarms && !is_alarm {
                continue;
            }
            let line = format!(
                "[{}] {} {}: {}",
                env.sample.timestamp,
                if is_alarm { "ALARM" } else { "info" },
                env.source.origin,
                env.sample.value
            );
            if self.stdout {
                println!("{line}");
            }
            self.rendered += 1;
            ctx.emit(port, line);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::run_source_pipeline;
    use asdf_core::error::ModuleError;
    use asdf_core::module::{InitCtx, Module, PortId, RunCtx, RunReason};
    use asdf_core::registry::ModuleRegistry;
    use asdf_core::time::TickDuration;

    /// Emits alternating true/false alarm flags.
    struct FlagSource {
        port: Option<PortId>,
        n: u64,
    }
    impl Module for FlagSource {
        fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
            self.port = Some(ctx.declare_output_with_origin("alarm0", "slave03"));
            ctx.request_periodic(TickDuration::SECOND);
            Ok(())
        }
        fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
            self.n += 1;
            ctx.emit(self.port.unwrap(), self.n.is_multiple_of(2));
            Ok(())
        }
    }

    fn registry() -> ModuleRegistry {
        let mut reg = ModuleRegistry::new();
        crate::register_analysis_modules(&mut reg);
        reg.register("flagsource", || Box::new(FlagSource { port: None, n: 0 }));
        reg
    }

    #[test]
    fn only_alarms_filters_healthy_samples() {
        let cfg = "\
[flagsource]
id = src

[print]
id = alarm
input[a] = @src
";
        let out = run_source_pipeline(&registry(), cfg, "alarm", 6);
        assert_eq!(out.len(), 3, "three of six flags are true");
        for env in &out {
            let line = env.sample.value.as_text().unwrap();
            assert!(line.contains("ALARM"));
            assert!(line.contains("slave03"), "origin in line: {line}");
        }
    }

    #[test]
    fn verbose_mode_renders_everything() {
        let cfg = "\
[flagsource]
id = src

[print]
id = alarm
only_alarms = false
input[a] = @src
";
        let out = run_source_pipeline(&registry(), cfg, "alarm", 6);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn print_requires_an_input() {
        use asdf_core::config::Config;
        use asdf_core::dag::Dag;
        let parsed: Config = "[print]\nid = p\n".parse().unwrap();
        assert!(Dag::build(&registry(), &parsed).is_err());
    }
}
