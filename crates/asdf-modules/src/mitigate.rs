//! The `mitigate` action module — the paper's second future-work item
//! (§5): "equip ASDF with the ability to actively mitigate the
//! consequences of a performance problem once it is detected."
//!
//! The module consumes alarm streams (any number of slots, typically
//! `input[a] = @bb` and `input[b] = @wb_tt`) and, when an alarm names a
//! node, decommissions that node: the jobtracker stops assigning work to
//! it, so its running attempts drain (or time out) and the cluster routes
//! around the problem — while monitoring of the node continues.
//!
//! Configuration parameters:
//!
//! * `max_actions` — safety valve: at most this many nodes may be
//!   decommissioned by this instance (default 1, so a misbehaving analysis
//!   cannot take down the cluster);
//! * `cooldown` — seconds to ignore further alarms after acting
//!   (default 300).
//!
//! Outputs: `action0` — a `Text` record of each mitigation taken.

use std::collections::HashSet;

use asdf_core::error::ModuleError;
use asdf_core::module::{InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::time::Timestamp;
use asdf_rpc::daemons::ClusterHandle;

/// Alarm-driven node decommissioner.
pub struct Mitigate {
    cluster: ClusterHandle,
    max_actions: usize,
    cooldown: u64,
    acted_on: HashSet<usize>,
    last_action_at: Option<Timestamp>,
    out: Option<PortId>,
}

impl Mitigate {
    /// Creates a mitigator bound to `cluster`.
    pub fn new(cluster: ClusterHandle) -> Self {
        Mitigate {
            cluster,
            max_actions: 1,
            cooldown: 300,
            acted_on: HashSet::new(),
            last_action_at: None,
            out: None,
        }
    }

    /// Node indices this instance has decommissioned.
    pub fn acted_on(&self) -> &HashSet<usize> {
        &self.acted_on
    }
}

impl Module for Mitigate {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.max_actions = ctx.parse_param_or("max_actions", 1usize)?;
        self.cooldown = ctx.parse_param_or("cooldown", 300u64)?;
        if ctx.input_slots().is_empty() {
            return Err(ModuleError::BadInputs(
                "mitigate needs at least one alarm input".into(),
            ));
        }
        self.out = Some(ctx.declare_output("action0"));
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        let port = self.out.expect("initialized");
        let (drain, mut emit) = ctx.drain_and_emit();
        for (_, env) in drain {
            if env.sample.value.as_bool() != Some(true) {
                continue;
            }
            if self.acted_on.len() >= self.max_actions {
                continue;
            }
            if let Some(last) = self.last_action_at {
                if env.sample.timestamp.saturating_since(last).as_secs() < self.cooldown {
                    continue;
                }
            }
            let origin = env.source.origin.clone();
            let node = self.cluster.with(|c| c.node_index_of(&origin));
            let Some(node) = node else {
                return Err(ModuleError::Other(format!(
                    "alarm origin `{origin}` names no cluster node"
                )));
            };
            if self.acted_on.contains(&node) {
                continue;
            }
            self.cluster.with(|c| c.decommission(node));
            self.acted_on.insert(node);
            self.last_action_at = Some(env.sample.timestamp);
            emit.emit(
                port,
                format!(
                    "[{}] decommissioned {origin} (alarm from {})",
                    env.sample.timestamp, env.source.instance
                ),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_core::config::Config;
    use asdf_core::dag::Dag;
    use asdf_core::engine::TickEngine;
    use asdf_core::registry::ModuleRegistry;
    use asdf_core::time::TickDuration;
    use hadoop_sim::cluster::{Cluster, ClusterConfig};

    /// Raises an alarm naming a configured node at a configured time.
    struct AlarmAt {
        port: Option<PortId>,
        at: u64,
        t: u64,
    }
    impl Module for AlarmAt {
        fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
            self.at = ctx.parse_param("at")?;
            let origin: String = ctx.require_param("origin")?.to_owned();
            self.port = Some(ctx.declare_output_with_origin("alarm0", origin));
            ctx.request_periodic(TickDuration::SECOND);
            Ok(())
        }
        fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
            self.t += 1;
            ctx.emit(self.port.unwrap(), self.t > self.at);
            Ok(())
        }
    }

    fn setup(cfg_text: &str) -> (ClusterHandle, TickEngine) {
        let handle = ClusterHandle::new(Cluster::new(ClusterConfig::new(4, 3), Vec::new()));
        let mut reg = ModuleRegistry::new();
        crate::register_all(&mut reg, handle.clone());
        reg.register("alarm_at", || {
            Box::new(AlarmAt {
                port: None,
                at: 0,
                t: 0,
            })
        });
        let cfg: Config = cfg_text.parse().unwrap();
        let dag = Dag::build(&reg, &cfg).unwrap();
        (handle, TickEngine::new(dag))
    }

    #[test]
    fn alarm_triggers_decommission_of_the_named_node() {
        let (handle, mut eng) = setup(
            "\
[cluster_driver]
id = drv

[alarm_at]
id = det
at = 10
origin = slave02

[mitigate]
id = fix
input[a] = det.alarm0
",
        );
        let tap = eng.tap("fix").unwrap();
        eng.run_for(TickDuration::from_secs(20)).unwrap();
        assert!(handle.with(|c| c.is_decommissioned(2)));
        assert!(!handle.with(|c| c.is_decommissioned(0)));
        let actions = tap.drain();
        assert_eq!(actions.len(), 1, "exactly one action record");
        assert!(actions[0]
            .sample
            .value
            .as_text()
            .unwrap()
            .contains("decommissioned slave02"));
    }

    #[test]
    fn max_actions_caps_the_blast_radius() {
        let (handle, mut eng) = setup(
            "\
[cluster_driver]
id = drv

[alarm_at]
id = det1
at = 5
origin = slave01

[alarm_at]
id = det2
at = 8
origin = slave03

[mitigate]
id = fix
max_actions = 1
cooldown = 0
input[a] = det1.alarm0
input[b] = det2.alarm0
",
        );
        eng.run_for(TickDuration::from_secs(20)).unwrap();
        let decommissioned: Vec<bool> =
            handle.with(|c| (0..4).map(|i| c.is_decommissioned(i)).collect());
        assert_eq!(
            decommissioned.iter().filter(|&&d| d).count(),
            1,
            "only one node may be taken out: {decommissioned:?}"
        );
    }

    #[test]
    fn unknown_origin_is_a_runtime_error() {
        let (_, mut eng) = setup(
            "\
[cluster_driver]
id = drv

[alarm_at]
id = det
at = 2
origin = not-a-node

[mitigate]
id = fix
input[a] = det.alarm0
",
        );
        let err = eng.run_for(TickDuration::from_secs(10)).unwrap_err();
        assert_eq!(err.instance, "fix");
    }

    #[test]
    fn decommissioned_node_receives_no_new_tasks() {
        let handle = ClusterHandle::new(Cluster::new(ClusterConfig::new(4, 11), Vec::new()));
        handle.with(|c| {
            c.advance(120);
            c.decommission(1);
        });
        // Drain logs, run on, and verify no new launches on node 1.
        handle.with(|c| {
            let _ = c.drain_logs(1);
            c.advance(300);
            let (tt, _) = c.drain_logs(1);
            assert!(
                !tt.iter().any(|l| l.contains("LaunchTaskAction")),
                "no tasks may start on a decommissioned node"
            );
            // The cluster keeps making progress elsewhere.
            assert!(c.stats().maps_done > 0);
        });
    }
}
