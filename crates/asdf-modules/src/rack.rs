//! Rack-level tree-reduce math for fleet-scale peer comparison.
//!
//! Diagnosing a 5000-node fleet with the flat `metric_rank` wiring pushes
//! every node's metric vectors through one global DAG stage. The fleet
//! path instead tree-reduces **per-rack summaries**: each rack computes
//! its nodes' windowed per-metric means locally (`rack_agg`), and the
//! global stage merges rack summaries before running the identical peer
//! baseline + MAD + deviation ranking. The global stage then costs
//! O(racks) *data* while the fleet still pays O(nodes) *work*, spread
//! across the rack aggregators.
//!
//! The merge is exact by construction: a rack summary carries the per-node
//! windowed means themselves (a sufficient statistic for the peer
//! comparison), and merging is concatenation in global node order — no
//! arithmetic happens at merge time, so any tree shape reduces to the same
//! flat mean matrix bitwise. The per-node mean and the per-metric
//! median/MAD are computed by the exact same code on both paths
//! ([`windowed_mean_into`], [`peer_baseline_into`]), which is what the
//! rack-merge proptests pin down.

use crate::analysis_bb::median;
use crate::kernel::CentroidBlock;

/// Accumulates `rows` (chronologically ordered window samples) into `out`
/// and scales by `1/window` — the exact windowed-mean arithmetic of the
/// flat `metric_rank` path. `out` is fully overwritten.
pub fn windowed_mean_into<'a>(
    rows: impl Iterator<Item = &'a [f64]>,
    window: usize,
    out: &mut [f64],
) {
    for m in out.iter_mut() {
        *m = 0.0;
    }
    for v in rows {
        for (m, x) in out.iter_mut().zip(v) {
            *m += x;
        }
    }
    let inv_n = 1.0 / window as f64;
    for m in out.iter_mut() {
        *m *= inv_n;
    }
}

/// Component-wise peer baseline (median across node rows) and MAD (median
/// absolute deviation from that baseline) over a mean matrix. `col` is
/// reusable scratch.
pub fn peer_baseline_into(
    means: &CentroidBlock,
    baseline: &mut [f64],
    mad: &mut [f64],
    col: &mut Vec<f64>,
) {
    let dim = baseline.len();
    for d in 0..dim {
        col.clear();
        col.extend(means.rows().map(|r| r[d]));
        baseline[d] = median(col);
        let base = baseline[d];
        col.clear();
        col.extend(means.rows().map(|r| (r[d] - base).abs()));
        mad[d] = median(col);
    }
}

/// A rack's contribution to the global peer comparison: the windowed
/// per-metric means of its nodes, in ascending global node order.
#[derive(Debug, Clone, PartialEq)]
pub struct RackSummary {
    /// Nodes summarized by this partial.
    pub n_nodes: usize,
    /// Metrics per node.
    pub dim: usize,
    /// Row-major `n_nodes × dim` mean matrix.
    pub means: Vec<f64>,
}

impl RackSummary {
    /// Encodes the summary as a self-describing flat row:
    /// `[n_nodes, dim, means…]`.
    pub fn encode_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.push(self.n_nodes as f64);
        out.push(self.dim as f64);
        out.extend_from_slice(&self.means);
    }

    /// Decodes a row produced by [`Self::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation when the header is
    /// missing, non-integral, or inconsistent with the payload length.
    pub fn decode(row: &[f64]) -> Result<RackSummary, String> {
        if row.len() < 2 {
            return Err(format!(
                "rack summary needs [k, dim, …], got {} values",
                row.len()
            ));
        }
        let (k, dim) = (row[0], row[1]);
        if k.fract() != 0.0 || dim.fract() != 0.0 || k < 1.0 || dim < 1.0 {
            return Err(format!("bad rack summary header [k={k}, dim={dim}]"));
        }
        let (n_nodes, dim) = (k as usize, dim as usize);
        let want = n_nodes * dim;
        if row.len() - 2 != want {
            return Err(format!(
                "rack summary payload is {} values, header says {n_nodes}x{dim}",
                row.len() - 2
            ));
        }
        Ok(RackSummary {
            n_nodes,
            dim,
            means: row[2..].to_vec(),
        })
    }

    /// Merges partials (each covering a contiguous node range, in global
    /// node order) into one summary — pure concatenation, no arithmetic,
    /// so every merge tree shape produces the identical matrix.
    ///
    /// # Panics
    ///
    /// Panics when partials disagree on `dim`.
    pub fn merge(parts: &[RackSummary]) -> RackSummary {
        let dim = parts.first().map_or(0, |p| p.dim);
        let mut merged = RackSummary {
            n_nodes: 0,
            dim,
            means: Vec::new(),
        };
        for p in parts {
            assert_eq!(p.dim, dim, "rack partials must agree on metric width");
            merged.n_nodes += p.n_nodes;
            merged.means.extend_from_slice(&p.means);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_round_trips_through_encoding() {
        let s = RackSummary {
            n_nodes: 2,
            dim: 3,
            means: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        let mut row = Vec::new();
        s.encode_into(&mut row);
        assert_eq!(row[..2], [2.0, 3.0]);
        assert_eq!(RackSummary::decode(&row).unwrap(), s);
    }

    #[test]
    fn decode_rejects_malformed_rows() {
        assert!(RackSummary::decode(&[]).is_err());
        assert!(RackSummary::decode(&[2.0]).is_err());
        assert!(RackSummary::decode(&[2.5, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0]).is_err());
        assert!(RackSummary::decode(&[2.0, 2.0, 0.0]).is_err()); // short payload
        assert!(RackSummary::decode(&[0.0, 2.0]).is_err()); // zero nodes
    }

    #[test]
    fn merge_concatenates_in_order() {
        let a = RackSummary {
            n_nodes: 1,
            dim: 2,
            means: vec![1.0, 2.0],
        };
        let b = RackSummary {
            n_nodes: 2,
            dim: 2,
            means: vec![3.0, 4.0, 5.0, 6.0],
        };
        let m = RackSummary::merge(&[a.clone(), b.clone()]);
        assert_eq!(m.n_nodes, 3);
        assert_eq!(m.means, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // Tree shapes collapse to the same result.
        let t = RackSummary::merge(&[RackSummary::merge(&[a]), b]);
        assert_eq!(m, t);
    }

    #[test]
    fn windowed_mean_matches_naive() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let mut out = vec![f64::NAN; 2];
        windowed_mean_into(rows.iter().map(|r| r.as_slice()), 3, &mut out);
        assert_eq!(
            out,
            vec![(1.0 + 2.0 + 3.0) / 3.0, (10.0 + 20.0 + 30.0) / 3.0]
        );
    }
}
