//! The `mavgvec` analysis module.
//!
//! Paper §3: "mavgvec ... computes arithmetic mean and variance of a vector
//! input over a sliding window of samples from multiple given input data
//! streams. The sample vector size and window width are configurable, as is
//! the number of samples to slide the window before generating new
//! outputs."
//!
//! Configuration parameters:
//!
//! * `window` — samples per window (required, > 0);
//! * `slide` — samples to advance between emissions (default = `window`);
//! * `emit` — `mean`, `var`, `stddev`, or `both` (default `both`:
//!   `output0` = mean, `output1` = stddev).

use std::collections::VecDeque;
use std::sync::Arc;

use asdf_core::error::ModuleError;
use asdf_core::module::{InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::value::{Sample, Value};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Emit {
    Mean,
    Var,
    StdDev,
    Both,
}

/// Moving mean/variance over a sliding window of vector samples.
///
/// Vector samples are buffered by sharing the engine's `Arc<[f64]>`
/// allocation (no per-sample copy); the per-emission statistics are
/// accumulated in reusable scratch buffers.
#[derive(Debug, Default)]
pub struct MavgVec {
    window: usize,
    slide: usize,
    emit: Option<Emit>,
    buf: VecDeque<(asdf_core::time::Timestamp, Arc<[f64]>)>,
    since_emit: usize,
    /// Per-emission mean scratch.
    mean: Vec<f64>,
    /// Per-emission variance scratch (transformed to stddev in place when
    /// that is what gets emitted).
    var: Vec<f64>,
    out_a: Option<PortId>,
    out_b: Option<PortId>,
}

impl MavgVec {
    /// Creates an unconfigured instance (configured in `init`).
    pub fn new() -> Self {
        MavgVec::default()
    }
}

impl Module for MavgVec {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.window = ctx.parse_param("window")?;
        if self.window == 0 {
            return Err(ModuleError::invalid_parameter("window", "must be positive"));
        }
        self.slide = ctx.parse_param_or("slide", self.window)?;
        if self.slide == 0 {
            return Err(ModuleError::invalid_parameter("slide", "must be positive"));
        }
        ctx.expect_input_count(1)?;
        let origin = ctx.input_slots()[0].1[0].origin.clone();
        let emit = match ctx.param("emit").unwrap_or("both") {
            "mean" => Emit::Mean,
            "var" => Emit::Var,
            "stddev" => Emit::StdDev,
            "both" => Emit::Both,
            other => {
                return Err(ModuleError::invalid_parameter(
                    "emit",
                    format!("unknown mode `{other}`"),
                ))
            }
        };
        self.emit = Some(emit);
        match emit {
            Emit::Mean => self.out_a = Some(ctx.declare_output_with_origin("mean", origin)),
            Emit::Var => self.out_a = Some(ctx.declare_output_with_origin("var", origin)),
            Emit::StdDev => {
                self.out_a = Some(ctx.declare_output_with_origin("stddev", origin));
            }
            Emit::Both => {
                self.out_a = Some(ctx.declare_output_with_origin("mean", origin.clone()));
                self.out_b = Some(ctx.declare_output_with_origin("stddev", origin));
            }
        }
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        for (_, env) in ctx.take_all() {
            // Vector samples share the engine's allocation; only scalar
            // promotions copy (one element).
            let vec: Arc<[f64]> = match &env.sample.value {
                Value::Vector(v) => Arc::clone(v),
                Value::Float(x) => Arc::from(vec![*x]),
                Value::Int(x) => Arc::from(vec![*x as f64]),
                other => {
                    return Err(ModuleError::Other(format!(
                        "mavgvec expects numeric samples, got {}",
                        other.type_name()
                    )))
                }
            };
            if let Some((_, first)) = self.buf.front() {
                if first.len() != vec.len() {
                    return Err(ModuleError::Other(format!(
                        "inconsistent vector width: {} then {}",
                        first.len(),
                        vec.len()
                    )));
                }
            }
            self.buf.push_back((env.sample.timestamp, vec));
            self.since_emit += 1;

            if self.buf.len() >= self.window && self.since_emit >= self.slide {
                self.since_emit = 0;
                let dim = self.buf.back().expect("non-empty").1.len();
                let n = self.window as f64;
                self.mean.clear();
                self.mean.resize(dim, 0.0);
                for (_, v) in self.buf.iter().rev().take(self.window) {
                    for (m, x) in self.mean.iter_mut().zip(v.iter()) {
                        *m += x;
                    }
                }
                for m in &mut self.mean {
                    *m /= n;
                }
                self.var.clear();
                self.var.resize(dim, 0.0);
                for (_, v) in self.buf.iter().rev().take(self.window) {
                    for ((s, m), x) in self.var.iter_mut().zip(&self.mean).zip(v.iter()) {
                        let d = x - m;
                        *s += d * d;
                    }
                }
                for s in &mut self.var {
                    *s /= n;
                }
                // Stamp outputs with the window-end sample's timestamp so
                // cross-node alignment sees matching times.
                let ts = self.buf.back().expect("non-empty").0;
                let emit = self.emit.expect("configured in init");
                match emit {
                    Emit::Mean => {
                        ctx.emit_sample(self.out_a.unwrap(), Sample::new(ts, &self.mean[..]));
                    }
                    Emit::Var => {
                        ctx.emit_sample(self.out_a.unwrap(), Sample::new(ts, &self.var[..]));
                    }
                    Emit::StdDev => {
                        for s in &mut self.var {
                            *s = s.sqrt();
                        }
                        ctx.emit_sample(self.out_a.unwrap(), Sample::new(ts, &self.var[..]));
                    }
                    Emit::Both => {
                        ctx.emit_sample(self.out_a.unwrap(), Sample::new(ts, &self.mean[..]));
                        for s in &mut self.var {
                            *s = s.sqrt();
                        }
                        ctx.emit_sample(self.out_b.unwrap(), Sample::new(ts, &self.var[..]));
                    }
                }
                // Trim history we can never need again.
                while self.buf.len() > self.window {
                    self.buf.pop_front();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::{run_source_pipeline, vector_source_registry};
    use asdf_core::value::Value;

    #[test]
    fn mean_and_stddev_over_non_overlapping_windows() {
        // Source emits [t, 2t] at t = 1, 2, 3, ...
        let cfg = "\
[vecsource]
id = src

[mavgvec]
id = avg
window = 4
input[input] = src.out
";
        let out = run_source_pipeline(&vector_source_registry(), cfg, "avg", 8);
        // Two windows: t=1..4 and t=5..8 (slide defaults to window).
        assert_eq!(out.len(), 4, "mean+stddev per window: {out:?}");
        let mean1 = out[0].sample.value.as_vector().unwrap().to_vec();
        assert_eq!(mean1, vec![2.5, 5.0]);
        let sd1 = out[1].sample.value.as_vector().unwrap().to_vec();
        let expect_sd = (1.25f64).sqrt();
        assert!((sd1[0] - expect_sd).abs() < 1e-9);
        assert!((sd1[1] - 2.0 * expect_sd).abs() < 1e-9);
        let mean2 = out[2].sample.value.as_vector().unwrap().to_vec();
        assert_eq!(mean2, vec![6.5, 13.0]);
    }

    #[test]
    fn sliding_windows_overlap() {
        let cfg = "\
[vecsource]
id = src

[mavgvec]
id = avg
window = 4
slide = 2
emit = mean
input[input] = src.out
";
        let out = run_source_pipeline(&vector_source_registry(), cfg, "avg", 8);
        // Windows ending at t=4, 6, 8.
        assert_eq!(out.len(), 3);
        let means: Vec<f64> = out
            .iter()
            .map(|e| e.sample.value.as_vector().unwrap()[0])
            .collect();
        assert_eq!(means, vec![2.5, 4.5, 6.5]);
    }

    #[test]
    fn emit_modes_declare_matching_ports() {
        for (mode, port) in [("mean", "mean"), ("var", "var"), ("stddev", "stddev")] {
            let cfg = format!(
                "[vecsource]\nid = src\n\n[mavgvec]\nid = avg\nwindow = 2\nemit = {mode}\ninput[input] = src.out\n"
            );
            let out = run_source_pipeline(&vector_source_registry(), &cfg, "avg", 4);
            assert!(!out.is_empty());
            assert!(out.iter().all(|e| e.source.name == port));
        }
    }

    #[test]
    fn output_timestamps_are_window_ends() {
        let cfg = "\
[vecsource]
id = src

[mavgvec]
id = avg
window = 3
emit = mean
input[input] = src.out
";
        let out = run_source_pipeline(&vector_source_registry(), cfg, "avg", 6);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].sample.timestamp.as_secs(), 2); // samples at t=0,1,2
        assert_eq!(out[1].sample.timestamp.as_secs(), 5);
    }

    #[test]
    fn origin_is_inherited_from_the_input() {
        let cfg = "\
[vecsource]
id = src

[mavgvec]
id = avg
window = 2
emit = mean
input[input] = src.out
";
        let out = run_source_pipeline(&vector_source_registry(), cfg, "avg", 2);
        assert_eq!(out[0].source.origin, "test-node");
    }

    #[test]
    fn bad_parameters_fail_init() {
        use asdf_core::config::Config;
        use asdf_core::dag::Dag;
        for cfg in [
            "[vecsource]\nid = src\n\n[mavgvec]\nid = a\nwindow = 0\ninput[i] = src.out\n",
            "[vecsource]\nid = src\n\n[mavgvec]\nid = a\nwindow = 2\nslide = 0\ninput[i] = src.out\n",
            "[vecsource]\nid = src\n\n[mavgvec]\nid = a\nwindow = 2\nemit = nope\ninput[i] = src.out\n",
            "[vecsource]\nid = src\n\n[mavgvec]\nid = a\ninput[i] = src.out\n", // missing window
            "[mavgvec]\nid = a\nwindow = 2\n", // no inputs
        ] {
            let parsed: Config = cfg.parse().unwrap();
            assert!(
                Dag::build(&vector_source_registry(), &parsed).is_err(),
                "should reject: {cfg}"
            );
        }
    }

    #[test]
    fn scalar_inputs_are_promoted_to_1d_vectors() {
        use crate::testutil::scalar_source_registry;
        let cfg = "\
[scalarsource]
id = src

[mavgvec]
id = avg
window = 2
emit = mean
input[input] = src.out
";
        let out = run_source_pipeline(&scalar_source_registry(), cfg, "avg", 4);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].sample.value, Value::from(vec![1.5]));
    }
}
