//! The `mavgvec` analysis module.
//!
//! Paper §3: "mavgvec ... computes arithmetic mean and variance of a vector
//! input over a sliding window of samples from multiple given input data
//! streams. The sample vector size and window width are configurable, as is
//! the number of samples to slide the window before generating new
//! outputs."
//!
//! Configuration parameters:
//!
//! * `window` — samples per window (required, > 0);
//! * `slide` — samples to advance between emissions (default = `window`);
//! * `emit` — `mean`, `var`, `stddev`, or `both` (default `both`:
//!   `output0` = mean, `output1` = stddev).

use std::collections::VecDeque;
use std::sync::Arc;

use asdf_core::error::ModuleError;
use asdf_core::module::{Emitter, InitCtx, Module, PortId, RowBlock, RunCtx, RunReason};
use asdf_core::value::Value;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Emit {
    Mean,
    Var,
    StdDev,
    Both,
}

/// One buffered window sample: either a per-envelope vector sharing the
/// engine's `Arc<[f64]>` allocation, or a zero-copy view into one row of a
/// shared columnar [`RowBlock`] — both representations hold the producer's
/// bytes without a per-sample copy, so the window statistics are bitwise
/// identical either way.
#[derive(Debug, Clone)]
enum WindowRow {
    Owned(Arc<[f64]>),
    Block(Arc<RowBlock>, usize),
}

impl WindowRow {
    fn as_slice(&self) -> &[f64] {
        match self {
            WindowRow::Owned(v) => v,
            WindowRow::Block(block, r) => block.row(*r),
        }
    }

    fn len(&self) -> usize {
        self.as_slice().len()
    }
}

/// Moving mean/variance over a sliding window of vector samples.
///
/// Vector samples are buffered by sharing the engine's `Arc<[f64]>`
/// allocation (no per-sample copy); the per-emission statistics are
/// accumulated in reusable scratch buffers. Under a batched engine the
/// module consumes whole [`RowBlock`]s — the campaign's collector edges
/// carry hundreds of rows per tick — buffering zero-copy row views instead
/// of materialized envelopes.
#[derive(Debug, Default)]
pub struct MavgVec {
    window: usize,
    slide: usize,
    emit: Option<Emit>,
    buf: VecDeque<(asdf_core::time::Timestamp, WindowRow)>,
    since_emit: usize,
    /// Per-emission mean scratch.
    mean: Vec<f64>,
    /// Per-emission variance scratch (transformed to stddev in place when
    /// that is what gets emitted).
    var: Vec<f64>,
    out_a: Option<PortId>,
    out_b: Option<PortId>,
}

impl MavgVec {
    /// Creates an unconfigured instance (configured in `init`).
    pub fn new() -> Self {
        MavgVec::default()
    }

    /// Buffers one sample and emits window statistics when a window
    /// completes — the single per-sample step both the envelope and the
    /// row-block paths funnel through, so their outputs are bitwise
    /// identical by construction.
    fn ingest(
        &mut self,
        ts: asdf_core::time::Timestamp,
        row: WindowRow,
        emit: &mut Emitter<'_>,
    ) -> Result<(), ModuleError> {
        if let Some((_, first)) = self.buf.front() {
            if first.len() != row.len() {
                return Err(ModuleError::Other(format!(
                    "inconsistent vector width: {} then {}",
                    first.len(),
                    row.len()
                )));
            }
        }
        self.buf.push_back((ts, row));
        self.since_emit += 1;

        if self.buf.len() >= self.window && self.since_emit >= self.slide {
            self.since_emit = 0;
            let dim = self.buf.back().expect("non-empty").1.len();
            let n = self.window as f64;
            self.mean.clear();
            self.mean.resize(dim, 0.0);
            for (_, v) in self.buf.iter().rev().take(self.window) {
                for (m, x) in self.mean.iter_mut().zip(v.as_slice()) {
                    *m += x;
                }
            }
            for m in &mut self.mean {
                *m /= n;
            }
            self.var.clear();
            self.var.resize(dim, 0.0);
            for (_, v) in self.buf.iter().rev().take(self.window) {
                for ((s, m), x) in self.var.iter_mut().zip(&self.mean).zip(v.as_slice()) {
                    let d = x - m;
                    *s += d * d;
                }
            }
            for s in &mut self.var {
                *s /= n;
            }
            // Stamp outputs with the window-end sample's timestamp so
            // cross-node alignment sees matching times. Emitting as
            // columnar rows lets a batching engine pack a run's
            // consecutive window outputs into one shared block for
            // row-block consumers like `knn`.
            let ts = self.buf.back().expect("non-empty").0;
            match self.emit.expect("configured in init") {
                Emit::Mean => {
                    emit.emit_row_at(self.out_a.unwrap(), ts, &self.mean);
                }
                Emit::Var => {
                    emit.emit_row_at(self.out_a.unwrap(), ts, &self.var);
                }
                Emit::StdDev => {
                    for s in &mut self.var {
                        *s = s.sqrt();
                    }
                    emit.emit_row_at(self.out_a.unwrap(), ts, &self.var);
                }
                Emit::Both => {
                    emit.emit_row_at(self.out_a.unwrap(), ts, &self.mean);
                    for s in &mut self.var {
                        *s = s.sqrt();
                    }
                    emit.emit_row_at(self.out_b.unwrap(), ts, &self.var);
                }
            }
            // Trim history we can never need again.
            while self.buf.len() > self.window {
                self.buf.pop_front();
            }
        }
        Ok(())
    }

    /// Converts one envelope's payload into a buffered window row,
    /// validating the sample type exactly as before.
    fn envelope_row(value: &Value) -> Result<WindowRow, ModuleError> {
        match value {
            Value::Vector(v) => Ok(WindowRow::Owned(Arc::clone(v))),
            Value::Float(x) => Ok(WindowRow::Owned(Arc::from(vec![*x]))),
            Value::Int(x) => Ok(WindowRow::Owned(Arc::from(vec![*x as f64]))),
            other => Err(ModuleError::Other(format!(
                "mavgvec expects numeric samples, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Module for MavgVec {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.window = ctx.parse_param("window")?;
        if self.window == 0 {
            return Err(ModuleError::invalid_parameter("window", "must be positive"));
        }
        self.slide = ctx.parse_param_or("slide", self.window)?;
        if self.slide == 0 {
            return Err(ModuleError::invalid_parameter("slide", "must be positive"));
        }
        ctx.expect_input_count(1)?;
        let origin = ctx.input_slots()[0].1[0].origin.clone();
        let emit = match ctx.param("emit").unwrap_or("both") {
            "mean" => Emit::Mean,
            "var" => Emit::Var,
            "stddev" => Emit::StdDev,
            "both" => Emit::Both,
            other => {
                return Err(ModuleError::invalid_parameter(
                    "emit",
                    format!("unknown mode `{other}`"),
                ))
            }
        };
        self.emit = Some(emit);
        match emit {
            Emit::Mean => self.out_a = Some(ctx.declare_output_with_origin("mean", origin)),
            Emit::Var => self.out_a = Some(ctx.declare_output_with_origin("var", origin)),
            Emit::StdDev => {
                self.out_a = Some(ctx.declare_output_with_origin("stddev", origin));
            }
            Emit::Both => {
                self.out_a = Some(ctx.declare_output_with_origin("mean", origin.clone()));
                self.out_b = Some(ctx.declare_output_with_origin("stddev", origin));
            }
        }
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        // Borrowing drain: a whole tick-range (one envelope per run at
        // batch size 1, the full backlog under a batched engine) streams
        // through without a per-run Vec allocation.
        let (drain, mut emit) = ctx.drain_and_emit();
        for (_, env) in drain {
            // Vector samples share the engine's allocation; only scalar
            // promotions copy (one element).
            let row = Self::envelope_row(&env.sample.value)?;
            self.ingest(env.sample.timestamp, row, &mut emit)?;
        }
        Ok(())
    }

    /// Opt into columnar delivery: collector bursts arrive as shared
    /// [`RowBlock`]s and are buffered as zero-copy row views, skipping the
    /// per-sample envelope materialization on the campaign's highest-volume
    /// edges.
    fn accepts_row_blocks(&self) -> bool {
        true
    }

    fn run_batch(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        // Queued envelopes first, then row blocks: the engine's per-slot
        // invariant is that backlog rows are always newer than anything in
        // the queue, so this is exactly the per-sample arrival order.
        let blocks = ctx.take_row_blocks();
        let (drain, mut emit) = ctx.drain_and_emit();
        for (_, env) in drain {
            let row = Self::envelope_row(&env.sample.value)?;
            self.ingest(env.sample.timestamp, row, &mut emit)?;
        }
        for (_, block) in blocks {
            for r in 0..block.len() {
                let ts = block.stamps[r];
                self.ingest(ts, WindowRow::Block(Arc::clone(&block), r), &mut emit)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::{run_source_pipeline, vector_source_registry};
    use asdf_core::value::Value;

    #[test]
    fn mean_and_stddev_over_non_overlapping_windows() {
        // Source emits [t, 2t] at t = 1, 2, 3, ...
        let cfg = "\
[vecsource]
id = src

[mavgvec]
id = avg
window = 4
input[input] = src.out
";
        let out = run_source_pipeline(&vector_source_registry(), cfg, "avg", 8);
        // Two windows: t=1..4 and t=5..8 (slide defaults to window).
        assert_eq!(out.len(), 4, "mean+stddev per window: {out:?}");
        let mean1 = out[0].sample.value.as_vector().unwrap().to_vec();
        assert_eq!(mean1, vec![2.5, 5.0]);
        let sd1 = out[1].sample.value.as_vector().unwrap().to_vec();
        let expect_sd = (1.25f64).sqrt();
        assert!((sd1[0] - expect_sd).abs() < 1e-9);
        assert!((sd1[1] - 2.0 * expect_sd).abs() < 1e-9);
        let mean2 = out[2].sample.value.as_vector().unwrap().to_vec();
        assert_eq!(mean2, vec![6.5, 13.0]);
    }

    #[test]
    fn sliding_windows_overlap() {
        let cfg = "\
[vecsource]
id = src

[mavgvec]
id = avg
window = 4
slide = 2
emit = mean
input[input] = src.out
";
        let out = run_source_pipeline(&vector_source_registry(), cfg, "avg", 8);
        // Windows ending at t=4, 6, 8.
        assert_eq!(out.len(), 3);
        let means: Vec<f64> = out
            .iter()
            .map(|e| e.sample.value.as_vector().unwrap()[0])
            .collect();
        assert_eq!(means, vec![2.5, 4.5, 6.5]);
    }

    #[test]
    fn emit_modes_declare_matching_ports() {
        for (mode, port) in [("mean", "mean"), ("var", "var"), ("stddev", "stddev")] {
            let cfg = format!(
                "[vecsource]\nid = src\n\n[mavgvec]\nid = avg\nwindow = 2\nemit = {mode}\ninput[input] = src.out\n"
            );
            let out = run_source_pipeline(&vector_source_registry(), &cfg, "avg", 4);
            assert!(!out.is_empty());
            assert!(out.iter().all(|e| e.source.name == port));
        }
    }

    #[test]
    fn output_timestamps_are_window_ends() {
        let cfg = "\
[vecsource]
id = src

[mavgvec]
id = avg
window = 3
emit = mean
input[input] = src.out
";
        let out = run_source_pipeline(&vector_source_registry(), cfg, "avg", 6);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].sample.timestamp.as_secs(), 2); // samples at t=0,1,2
        assert_eq!(out[1].sample.timestamp.as_secs(), 5);
    }

    #[test]
    fn origin_is_inherited_from_the_input() {
        let cfg = "\
[vecsource]
id = src

[mavgvec]
id = avg
window = 2
emit = mean
input[input] = src.out
";
        let out = run_source_pipeline(&vector_source_registry(), cfg, "avg", 2);
        assert_eq!(out[0].source.origin, "test-node");
    }

    #[test]
    fn bad_parameters_fail_init() {
        use asdf_core::config::Config;
        use asdf_core::dag::Dag;
        for cfg in [
            "[vecsource]\nid = src\n\n[mavgvec]\nid = a\nwindow = 0\ninput[i] = src.out\n",
            "[vecsource]\nid = src\n\n[mavgvec]\nid = a\nwindow = 2\nslide = 0\ninput[i] = src.out\n",
            "[vecsource]\nid = src\n\n[mavgvec]\nid = a\nwindow = 2\nemit = nope\ninput[i] = src.out\n",
            "[vecsource]\nid = src\n\n[mavgvec]\nid = a\ninput[i] = src.out\n", // missing window
            "[mavgvec]\nid = a\nwindow = 2\n", // no inputs
        ] {
            let parsed: Config = cfg.parse().unwrap();
            assert!(
                Dag::build(&vector_source_registry(), &parsed).is_err(),
                "should reject: {cfg}"
            );
        }
    }

    #[test]
    fn row_block_batches_match_per_sample_outputs() {
        use crate::testutil::{burst_source_registry, run_source_pipeline_batched};
        // Bursts of 7 rows per tick with window 5 / slide 3: windows cross
        // block boundaries, several windows complete inside one block, and
        // the trailing rows of a block carry over to the next tick.
        let cfg = "\
[burstrows]
id = src
burst = 7

[mavgvec]
id = avg
window = 5
slide = 3
input[input] = src.out
";
        let reg = burst_source_registry();
        let reference: Vec<_> = run_source_pipeline_batched(&reg, cfg, "avg", 6, 1)
            .into_iter()
            .map(|e| (e.sample.timestamp, e.sample.value, e.source.name.clone()))
            .collect();
        assert!(!reference.is_empty());
        for batch in [2, 64] {
            let got: Vec<_> = run_source_pipeline_batched(&reg, cfg, "avg", 6, batch)
                .into_iter()
                .map(|e| (e.sample.timestamp, e.sample.value, e.source.name.clone()))
                .collect();
            assert_eq!(got, reference, "batch {batch} diverged from per-sample");
        }
    }

    #[test]
    fn scalar_inputs_are_promoted_to_1d_vectors() {
        use crate::testutil::scalar_source_registry;
        let cfg = "\
[scalarsource]
id = src

[mavgvec]
id = avg
window = 2
emit = mean
input[input] = src.out
";
        let out = run_source_pipeline(&scalar_source_registry(), cfg, "avg", 4);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].sample.value, Value::from(vec![1.5]));
    }
}
