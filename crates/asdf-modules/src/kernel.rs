//! SIMD-friendly squared-distance kernels and the contiguous storage they
//! read from.
//!
//! The black-box analysis is dominated by nearest-centroid scans over
//! ~120-dimensional metric vectors (paper §4.2: log-scaled 1-NN against
//! k-means centroids). Two things keep that scan from vectorizing when
//! centroids live in a `Vec<Vec<f64>>`:
//!
//! * every candidate chases a fresh heap pointer, so the scan's memory
//!   stream is ragged rather than a single linear walk;
//! * a strict left-to-right `acc += d*d` fold is one serial dependency
//!   chain, which caps throughput at one add per FP-add latency.
//!
//! This module fixes both. [`CentroidBlock`] stores all centroids in one
//! flat, row-major allocation whose rows start on 32-byte boundaries and
//! are zero-padded to a multiple of [`LANES`] components, and the kernels
//! ([`dist2_x4`], [`dist2_bounded_x4`], and the fused [`argmin_dist2`])
//! accumulate into **four independent lanes** that are folded once at the
//! end. Four lanes break the dependency chain and map exactly onto a
//! 32-byte SIMD register (4 × f64), so LLVM auto-vectorizes the inner
//! loop without any unstable `std::simd` dependency.
//!
//! On x86-64 each kernel additionally carries an AVX2 clone (same Rust
//! body compiled with `#[target_feature(enable = "avx2")]`), selected per
//! call by cached CPUID detection. The clone is *bitwise identical* to the
//! portable build: it is the same lane-ordered arithmetic — rustc never
//! contracts `mul`+`add` into FMA — so the only difference is that the
//! four lanes ride one 256-bit register instead of two 128-bit ones.
//!
//! # The lane-fold accumulation contract
//!
//! The 4-lane order is the *canonical* semantics of squared distance in
//! this workspace: lane `j` accumulates components `j, j+4, j+8, ...`,
//! and the total is folded as `(acc0 + acc1) + (acc2 + acc3)`. The scalar
//! reference ([`dist2_x4`]) and every vectorized or fused variant use the
//! same order, so their results are **bitwise identical** (pinned by the
//! `kernel_prop` property tests). Zero padding is bitwise-invisible:
//! squared terms are non-negative, so every lane accumulator stays
//! non-negative and `acc + 0.0` is exact.
//!
//! The old left-to-right [`crate::training::dist2`] remains as a
//! reference-only path for its own property tests; results differ from
//! the lane fold by ULPs. Golden fixtures were allowed a one-time move
//! when the hot paths switched accumulation order; in practice the
//! figure-level outputs were ULP-robust and did not change (see
//! DESIGN.md, "Kernel layout").

/// Components per accumulation lane group: 4 × f64 = one 32-byte SIMD
/// register.
pub const LANES: usize = 4;

/// Components between early-exit bound checks in [`dist2_bounded_x4`]
/// (four lane groups, matching the reference kernel's chunk of 16).
const BOUND_CHUNK: usize = 4 * LANES;

/// One 32-byte-aligned group of four `f64` lanes — the storage unit that
/// gives [`CentroidBlock`] and [`AlignedVec`] their alignment guarantee.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C, align(32))]
struct Lane4([f64; LANES]);

/// Rounds `dim` up to a whole number of lane groups.
fn blocks_for(dim: usize) -> usize {
    dim.div_ceil(LANES)
}

/// A contiguous, row-major matrix of `f64` rows, built once and scanned
/// many times.
///
/// Rows all share one allocation; each row starts on a 32-byte boundary
/// and is zero-padded to a multiple of [`LANES`] components. The padding
/// is an internal invariant (only the `dim`-component prefix of a row is
/// ever handed out mutably), which lets the kernels run a tail-free
/// full-stride loop over [`Self::row_padded`].
///
/// This is the storage behind [`crate::training::BlackBoxModel`]'s
/// centroids and the scratch matrices of the `analysis_bb` fingerpointer.
///
/// # Examples
///
/// ```
/// use asdf_modules::kernel::CentroidBlock;
///
/// let block = CentroidBlock::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
/// assert_eq!(block.len(), 2);
/// assert_eq!(block.dim(), 3);
/// assert_eq!(block.row(1), &[4.0, 5.0, 6.0]);
/// assert_eq!(block.rows().count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CentroidBlock {
    data: Vec<Lane4>,
    dim: usize,
    n_rows: usize,
}

impl CentroidBlock {
    /// Creates an empty block whose future rows have `dim` components.
    pub fn with_dim(dim: usize) -> Self {
        CentroidBlock {
            data: Vec::new(),
            dim,
            n_rows: 0,
        }
    }

    /// Creates a block of `n_rows` all-zero rows.
    pub fn zeroed(dim: usize, n_rows: usize) -> Self {
        CentroidBlock {
            data: vec![Lane4::default(); blocks_for(dim) * n_rows],
            dim,
            n_rows,
        }
    }

    /// Builds a block from ragged storage. The dimension is taken from the
    /// first row; an empty slice yields an empty zero-dimensional block.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all share one length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut block = CentroidBlock::with_dim(dim);
        for row in rows {
            block.push_row(row);
        }
        block
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row length must match block dim");
        self.data
            .resize(self.data.len() + blocks_for(self.dim), Lane4::default());
        self.n_rows += 1;
        self.row_mut(self.n_rows - 1).copy_from_slice(row);
    }

    /// Number of components per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// Whether the block has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Components per stored row including the zero padding (a multiple of
    /// [`LANES`]; 0 when `dim` is 0).
    pub fn stride(&self) -> usize {
        blocks_for(self.dim) * LANES
    }

    /// Row `i` without padding.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.row_padded(i)[..self.dim]
    }

    /// Row `i` including its zero padding (length [`Self::stride`]) — the
    /// tail-free view the kernels scan.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn row_padded(&self, i: usize) -> &[f64] {
        assert!(i < self.n_rows, "row {i} out of {}", self.n_rows);
        let blocks = blocks_for(self.dim);
        let lanes: &[Lane4] = &self.data[i * blocks..(i + 1) * blocks];
        // Lane4 is #[repr(C)] over [f64; LANES], so the group array is
        // layout-identical to a flat f64 slice.
        unsafe { std::slice::from_raw_parts(lanes.as_ptr().cast::<f64>(), blocks * LANES) }
    }

    /// Mutable view of row `i` without padding, so the zero-padding
    /// invariant cannot be violated through it.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.n_rows, "row {i} out of {}", self.n_rows);
        let blocks = blocks_for(self.dim);
        let dim = self.dim;
        let lanes: &mut [Lane4] = &mut self.data[i * blocks..(i + 1) * blocks];
        let flat = unsafe {
            std::slice::from_raw_parts_mut(lanes.as_mut_ptr().cast::<f64>(), blocks * LANES)
        };
        &mut flat[..dim]
    }

    /// Iterates the rows (without padding) in order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.n_rows).map(move |i| self.row(i))
    }

    /// Copies the block back out into ragged storage.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }

    /// Resets every component (padding included) to `0.0`, keeping the
    /// shape. Lets scratch matrices be reused without reallocating.
    pub fn zero(&mut self) {
        self.data.fill(Lane4::default());
    }

    /// Removes every row while keeping the dimension and the allocation,
    /// so a scratch block can be refilled with [`Self::push_row`] without
    /// reallocating — the batched classification path packs each
    /// tick-range into one reused block this way.
    pub fn clear(&mut self) {
        self.data.clear();
        self.n_rows = 0;
    }
}

impl PartialEq for CentroidBlock {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.n_rows == other.n_rows && self.data == other.data
    }
}

/// A 32-byte-aligned `f64` vector zero-padded to a multiple of [`LANES`]
/// components — the query-side counterpart of [`CentroidBlock`].
///
/// The `knn` hot path keeps its scaled-sample scratch and reciprocal-σ
/// vector in this form so the fused scan reads both sides of the distance
/// at full stride with no tail loop.
///
/// # Examples
///
/// ```
/// use asdf_modules::kernel::AlignedVec;
///
/// let v = AlignedVec::from_slice(&[1.0, 2.0, 3.0]);
/// assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0]);
/// assert_eq!(v.as_padded().len() % 4, 0);
/// assert!(v.as_padded()[3..].iter().all(|&x| x == 0.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AlignedVec {
    data: Vec<Lane4>,
    len: usize,
}

impl AlignedVec {
    /// An all-zero vector of `len` components.
    pub fn zeroed(len: usize) -> Self {
        AlignedVec {
            data: vec![Lane4::default(); blocks_for(len)],
            len,
        }
    }

    /// Copies a slice into aligned, padded storage.
    pub fn from_slice(v: &[f64]) -> Self {
        let mut out = AlignedVec::zeroed(v.len());
        out.as_mut_slice().copy_from_slice(v);
        out
    }

    /// Number of live (unpadded) components.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no live components.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The live components.
    pub fn as_slice(&self) -> &[f64] {
        &self.as_padded()[..self.len]
    }

    /// The live components plus the zero padding (length a multiple of
    /// [`LANES`]) — the tail-free view the kernels scan.
    pub fn as_padded(&self) -> &[f64] {
        unsafe {
            std::slice::from_raw_parts(self.data.as_ptr().cast::<f64>(), self.data.len() * LANES)
        }
    }

    /// Mutable view of the live components; the padding stays zero.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        let len = self.len;
        let flat = unsafe {
            std::slice::from_raw_parts_mut(
                self.data.as_mut_ptr().cast::<f64>(),
                self.data.len() * LANES,
            )
        };
        &mut flat[..len]
    }
}

/// Squared Euclidean distance in the canonical 4-lane accumulation order —
/// the scalar reference every vectorized variant is pinned against.
///
/// Lane `j` accumulates components `j, j+4, j+8, ...` (a shorter-than-4
/// tail lands in lanes `0..tail`), and the lanes are folded as
/// `(acc0 + acc1) + (acc2 + acc3)`. The order is part of the public
/// contract: [`dist2_bounded_x4`] and [`argmin_dist2`] produce bitwise
/// identical sums, including over zero-padded [`CentroidBlock`] /
/// [`AlignedVec`] views (padding contributes exact `+0.0` terms).
///
/// Only the common prefix is compared when the slices' lengths differ,
/// matching [`crate::training::dist2`]'s `zip` semantics.
pub fn dist2_x4(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        return unsafe { dist2_x4_avx2(a, b) };
    }
    dist2_x4_impl(a, b)
}

#[inline(always)]
fn dist2_x4_impl(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for j in 0..LANES {
            let d = ca[j] - cb[j];
            acc[j] += d * d;
        }
    }
    for (j, (x, y)) in chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .enumerate()
    {
        let d = x - y;
        acc[j] += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// [`dist2_x4`] with early exit: returns the folded partial sum (which is
/// `>= bound`) as soon as it reaches `bound`, checking once every 16
/// components.
///
/// Lane partial sums are monotone (squared terms are non-negative) and
/// the fold of non-negative lanes is monotone in each lane, so an
/// abandoned candidate provably cannot beat `bound`. A completed
/// computation is bitwise identical to [`dist2_x4`].
pub fn dist2_bounded_x4(a: &[f64], b: &[f64], bound: f64) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        return unsafe { dist2_bounded_x4_avx2(a, b, bound) };
    }
    dist2_bounded_x4_impl(a, b, bound)
}

#[inline(always)]
fn dist2_bounded_x4_impl(a: &[f64], b: &[f64], bound: f64) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let mut chunks_a = a.chunks_exact(BOUND_CHUNK);
    let mut chunks_b = b.chunks_exact(BOUND_CHUNK);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for g in 0..BOUND_CHUNK / LANES {
            for j in 0..LANES {
                let d = ca[g * LANES + j] - cb[g * LANES + j];
                acc[j] += d * d;
            }
        }
        let partial = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        if partial >= bound {
            return partial;
        }
    }
    let mut tail_a = chunks_a.remainder().chunks_exact(LANES);
    let mut tail_b = chunks_b.remainder().chunks_exact(LANES);
    for (ca, cb) in (&mut tail_a).zip(&mut tail_b) {
        for j in 0..LANES {
            let d = ca[j] - cb[j];
            acc[j] += d * d;
        }
    }
    for (j, (x, y)) in tail_a
        .remainder()
        .iter()
        .zip(tail_b.remainder())
        .enumerate()
    {
        let d = x - y;
        acc[j] += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Fused nearest-row scan: the index of the row of `block` nearest to
/// `query` in squared Euclidean distance ([`dist2_x4`] semantics), with
/// per-candidate early exit against the best distance so far.
///
/// `query` is either an unpadded vector of `block.dim()` components or a
/// padded view of `block.stride()` components whose tail is zero (as
/// produced by [`AlignedVec::as_padded`]); both give bitwise identical
/// decisions, but the padded form lets the scan run tail-free over
/// [`CentroidBlock::row_padded`]. Ties keep the lowest index. Returns 0
/// for an empty block.
///
/// # Panics
///
/// Panics if `query.len()` is neither `block.dim()` nor `block.stride()`.
pub fn argmin_dist2(query: &[f64], block: &CentroidBlock) -> usize {
    assert!(
        query.len() == block.dim() || query.len() == block.stride(),
        "query length {} matches neither dim {} nor stride {}",
        query.len(),
        block.dim(),
        block.stride()
    );
    let padded = query.len() == block.stride();
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        return unsafe { argmin_dist2_avx2(query, block, padded) };
    }
    argmin_dist2_impl(query, block, padded)
}

#[inline(always)]
fn argmin_dist2_impl(query: &[f64], block: &CentroidBlock, padded: bool) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for i in 0..block.len() {
        let row = if padded {
            block.row_padded(i)
        } else {
            block.row(i)
        };
        let d = dist2_bounded_x4_impl(query, row, best_d);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Cached CPUID check for the AVX2 fast path (the detection macro keeps
/// its own atomic cache, so repeated calls are a load and a bit test).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// The distance-kernel variant runtime dispatch selects on this host:
/// `"avx2"` when the AVX2 clones are taken, `"scalar"` otherwise.
///
/// Part of the host fingerprint perf-history records carry — two hosts
/// with different dispatch are different populations for trend analysis.
pub fn simd_dispatch() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        return "avx2";
    }
    "scalar"
}

/// [`dist2_x4`] compiled with AVX2 enabled: same lane-ordered arithmetic,
/// bitwise identical results (rustc performs no FP contraction), but the
/// four lanes occupy one 256-bit register.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn dist2_x4_avx2(a: &[f64], b: &[f64]) -> f64 {
    dist2_x4_impl(a, b)
}

/// [`dist2_bounded_x4`] compiled with AVX2 enabled; see [`dist2_x4_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn dist2_bounded_x4_avx2(a: &[f64], b: &[f64], bound: f64) -> f64 {
    dist2_bounded_x4_impl(a, b, bound)
}

/// [`argmin_dist2`] compiled with AVX2 enabled so the bounded distance
/// inlines into the scan inside the feature region; see [`dist2_x4_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn argmin_dist2_avx2(query: &[f64], block: &CentroidBlock, padded: bool) -> usize {
    argmin_dist2_impl(query, block, padded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_32_byte_aligned_and_zero_padded() {
        let block = CentroidBlock::from_rows(&[vec![1.0; 7], vec![2.0; 7]]);
        assert_eq!(block.stride(), 8);
        for i in 0..block.len() {
            let padded = block.row_padded(i);
            assert_eq!(padded.as_ptr() as usize % 32, 0, "row {i} misaligned");
            assert_eq!(padded.len(), 8);
            assert_eq!(padded[7], 0.0, "padding must stay zero");
        }
    }

    #[test]
    fn push_and_mutate_preserve_padding() {
        let mut block = CentroidBlock::zeroed(5, 2);
        block.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        block.push_row(&[9.0; 5]);
        assert_eq!(block.len(), 3);
        assert_eq!(block.row(1), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(block.row_padded(1)[5..].iter().all(|&x| x == 0.0));
        block.zero();
        assert!(block.rows().all(|r| r.iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn dist2_x4_matches_over_padded_views() {
        let a: Vec<f64> = (0..13).map(|i| i as f64 * 0.37).collect();
        let b: Vec<f64> = (0..13).map(|i| 5.0 - i as f64 * 0.21).collect();
        let block = CentroidBlock::from_rows(std::slice::from_ref(&b));
        let q = AlignedVec::from_slice(&a);
        let unpadded = dist2_x4(&a, &b);
        let padded = dist2_x4(q.as_padded(), block.row_padded(0));
        assert_eq!(unpadded.to_bits(), padded.to_bits());
    }

    #[test]
    fn argmin_ties_keep_the_lowest_index() {
        let rows = vec![vec![1.0, 1.0], vec![3.0, 3.0], vec![1.0, 1.0]];
        let block = CentroidBlock::from_rows(&rows);
        assert_eq!(argmin_dist2(&[1.0, 1.0], &block), 0);
        assert_eq!(argmin_dist2(&[3.1, 3.0], &block), 1);
    }

    #[test]
    fn empty_block_and_empty_dim() {
        let block = CentroidBlock::with_dim(3);
        assert_eq!(argmin_dist2(&[0.0, 0.0, 0.0], &block), 0);
        let zero_dim = CentroidBlock::from_rows(&[vec![], vec![]]);
        assert_eq!(zero_dim.dim(), 0);
        assert_eq!(zero_dim.len(), 2);
        assert_eq!(argmin_dist2(&[], &zero_dim), 0);
    }
}
