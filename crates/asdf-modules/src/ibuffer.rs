//! The `ibuffer` rate-matching module.
//!
//! Paper §3.7: "data collection may potentially be faster than data
//! analysis ... To handle this rate mismatch, a buffer module (ibuffer) has
//! been written to collect individual data points from a data collection
//! module output, and present the data as an array of data points to an
//! analysis module, which can then process a larger data set more slowly."
//!
//! Configuration parameters:
//!
//! * `size` — data points per emitted batch (required, > 0);
//! * `mode` — `tumbling` (default: buffer clears after each batch) or
//!   `sliding` (batch emitted every sample once warm).
//!
//! Scalar inputs batch into a `Vector` of `size` points; the batch carries
//! the timestamp of its newest point.

use std::collections::VecDeque;

use asdf_core::error::ModuleError;
use asdf_core::module::{InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::value::{Sample, Value};

/// Batches scalar samples into fixed-size vectors.
#[derive(Debug, Default)]
pub struct IBuffer {
    size: usize,
    sliding: bool,
    buf: VecDeque<f64>,
    out: Option<PortId>,
}

impl IBuffer {
    /// Creates an unconfigured instance.
    pub fn new() -> Self {
        IBuffer::default()
    }
}

impl Module for IBuffer {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.size = ctx.parse_param("size")?;
        if self.size == 0 {
            return Err(ModuleError::invalid_parameter("size", "must be positive"));
        }
        self.sliding = match ctx.param("mode").unwrap_or("tumbling") {
            "tumbling" => false,
            "sliding" => true,
            other => {
                return Err(ModuleError::invalid_parameter(
                    "mode",
                    format!("unknown mode `{other}`"),
                ))
            }
        };
        ctx.expect_input_count(1)?;
        let origin = ctx.input_slots()[0].1[0].origin.clone();
        self.out = Some(ctx.declare_output_with_origin("output0", origin));
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        // Borrowing drain: the rate-matching hot path consumes its whole
        // backlog (a full tick-range under a batched engine) without a
        // per-run Vec allocation.
        let out = self.out.expect("initialized");
        let (drain, mut emit) = ctx.drain_and_emit();
        for (_, env) in drain {
            let x = env.sample.value.as_float().ok_or_else(|| {
                ModuleError::Other(format!(
                    "ibuffer expects scalar samples, got {}",
                    env.sample.value.type_name()
                ))
            })?;
            self.buf.push_back(x);
            if self.buf.len() >= self.size {
                let batch: Vec<f64> = self.buf.iter().copied().collect();
                emit.emit_sample(out, Sample::new(env.sample.timestamp, Value::from(batch)));
                if self.sliding {
                    self.buf.pop_front();
                } else {
                    self.buf.clear();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::{run_source_pipeline, scalar_source_registry};

    #[test]
    fn tumbling_batches_do_not_overlap() {
        let cfg = "\
[scalarsource]
id = src

[ibuffer]
id = buf
size = 3
input[input] = src.out
";
        let out = run_source_pipeline(&scalar_source_registry(), cfg, "buf", 7);
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].sample.value.as_vector().unwrap(),
            &[1.0, 2.0, 3.0][..]
        );
        assert_eq!(
            out[1].sample.value.as_vector().unwrap(),
            &[4.0, 5.0, 6.0][..]
        );
        // Batch timestamp = newest point's timestamp (source emits at t=0..).
        assert_eq!(out[0].sample.timestamp.as_secs(), 2);
    }

    #[test]
    fn sliding_batches_overlap() {
        let cfg = "\
[scalarsource]
id = src

[ibuffer]
id = buf
size = 3
mode = sliding
input[input] = src.out
";
        let out = run_source_pipeline(&scalar_source_registry(), cfg, "buf", 5);
        assert_eq!(out.len(), 3);
        assert_eq!(
            out[1].sample.value.as_vector().unwrap(),
            &[2.0, 3.0, 4.0][..]
        );
    }

    #[test]
    fn origin_propagates() {
        let cfg = "\
[scalarsource]
id = src

[ibuffer]
id = buf
size = 2
input[input] = src.out
";
        let out = run_source_pipeline(&scalar_source_registry(), cfg, "buf", 2);
        assert_eq!(out[0].source.origin, "test-node");
    }

    #[test]
    fn bad_config_fails_init() {
        use asdf_core::config::Config;
        use asdf_core::dag::Dag;
        for cfg in [
            "[scalarsource]\nid = s\n\n[ibuffer]\nid = b\nsize = 0\ninput[i] = s.out\n",
            "[scalarsource]\nid = s\n\n[ibuffer]\nid = b\ninput[i] = s.out\n",
            "[scalarsource]\nid = s\n\n[ibuffer]\nid = b\nsize = 2\nmode = bogus\ninput[i] = s.out\n",
            "[ibuffer]\nid = b\nsize = 2\n",
        ] {
            let parsed: Config = cfg.parse().unwrap();
            assert!(
                Dag::build(&scalar_source_registry(), &parsed).is_err(),
                "should reject: {cfg}"
            );
        }
    }
}
