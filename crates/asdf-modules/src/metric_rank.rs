//! The `metric_rank` Orion+-style metric ranker.
//!
//! Node fingerpointing (the `analysis_bb`/`analysis_wb` modules) answers
//! *which node* misbehaves; the operator's next question is *which metric*
//! on that node deviates. Following Orion's approach of ranking metrics by
//! how far they depart from baseline, this module compares every node's
//! windowed per-metric mean against the **peer baseline** — the
//! component-wise median across nodes — and ranks metrics by a robust
//! deviation score:
//!
//! ```text
//! dev(node, metric) = |mean(node, metric) − median_over_nodes(metric)|
//!                     ─────────────────────────────────────────────────
//!                     MAD_over_nodes(metric) + 0.01·(1 + |median|)
//! ```
//!
//! The median-absolute-deviation denominator normalizes metrics of wildly
//! different scales (KB/s counters vs. percentages) without trusting any
//! single node's variance. The floor added to the MAD is *relative to the
//! baseline's own magnitude*: it keeps quiescent metrics (MAD ≈ 0) from
//! amplifying rounding noise into top ranks, while still letting a metric
//! whose peers sit near zero (drop counters, error rates) outrank a large
//! KB/s counter whose absolute deviation is bigger but relatively mild —
//! a genuinely deviant near-zero metric is exactly what a flaky NIC
//! looks like.
//!
//! Configuration parameters:
//!
//! * `window` — samples per window (default 60);
//! * `slide` — samples between evaluations (default = `window`);
//! * `top` — how many metrics to report per node (default 5).
//!
//! Inputs: one slot per node (`m0`, `m1`, ...), each carrying per-second
//! metric vectors (the same edges `knn` consumes). Output per node:
//! `rank<i>`, a vector of `2·top` values `[idx0, score0, idx1, score1, …]`
//! — metric indices into the collector's flattened frame, most deviant
//! first, ties broken toward the lower index so results are deterministic.

use std::collections::VecDeque;
use std::sync::Arc;

use asdf_core::error::ModuleError;
use asdf_core::module::{Emitter, InitCtx, Module, PortId, RowBlock, RunCtx, RunReason};
use asdf_core::value::Value;
use hadoop_logs::sync::Aligner;

use crate::kernel::CentroidBlock;
use crate::rack::{self, RackSummary};

/// Fraction of the baseline magnitude used as the deviation
/// denominator's floor (see the module docs' `dev` formula).
const MAD_FLOOR_FRACTION: f64 = 0.01;

/// One buffered metric vector: an envelope's shared allocation or a
/// zero-copy view into a columnar [`RowBlock`] (cf. `mavgvec`'s window
/// rows — both paths are bitwise identical by construction). Shared with
/// the `rack_agg` aggregator, which buffers the same collector edges.
#[derive(Debug, Clone)]
pub(crate) enum MetricRow {
    Owned(Arc<[f64]>),
    Block(Arc<RowBlock>, usize),
}

impl MetricRow {
    pub(crate) fn as_slice(&self) -> &[f64] {
        match self {
            MetricRow::Owned(v) => v,
            MetricRow::Block(block, r) => block.row(*r),
        }
    }
}

/// Peer-baseline metric deviation ranker.
#[derive(Debug)]
pub struct MetricRank {
    window: usize,
    slide: usize,
    top: usize,
    aligner: Aligner<MetricRow>,
    history: Vec<VecDeque<MetricRow>>,
    rows_since_eval: usize,
    /// Metric vector width, discovered from the first sample.
    dim: usize,
    /// Per-node windowed means, one contiguous row per node, zeroed and
    /// reused every evaluation.
    means: CentroidBlock,
    /// Peer baseline (component-wise median across nodes).
    baseline: Vec<f64>,
    /// Per-metric MAD across nodes.
    mad: Vec<f64>,
    /// Per-node column scratch for the medians.
    col: Vec<f64>,
    /// Ranking scratch: (metric index, deviation score).
    ranked: Vec<(usize, f64)>,
    /// Emission scratch: `[idx, score, ...]` pairs.
    out_row: Vec<f64>,
    rank_ports: Vec<PortId>,
    /// Rack mode: total fleet nodes reconstructed from `rack_agg`
    /// summaries (`0` = flat per-node inputs). See [`crate::rack`].
    rack_nodes: usize,
}

impl MetricRank {
    /// Creates an unconfigured instance.
    pub fn new() -> Self {
        MetricRank {
            window: 0,
            slide: 0,
            top: 0,
            aligner: Aligner::new(1),
            history: Vec::new(),
            rows_since_eval: 0,
            dim: 0,
            means: CentroidBlock::default(),
            baseline: Vec::new(),
            mad: Vec::new(),
            col: Vec::new(),
            ranked: Vec::new(),
            out_row: Vec::new(),
            rank_ports: Vec::new(),
            rack_nodes: 0,
        }
    }

    /// Funnels one envelope into the aligner — shared by the per-sample
    /// and row-block paths.
    fn push_envelope(
        &mut self,
        slot_idx: usize,
        secs: u64,
        value: &Value,
    ) -> Result<(), ModuleError> {
        let row = match value {
            Value::Vector(v) => MetricRow::Owned(Arc::clone(v)),
            other => {
                return Err(ModuleError::Other(format!(
                    "metric_rank expects vector samples, got {}",
                    other.type_name()
                )))
            }
        };
        if self.rack_nodes == 0 {
            self.check_width(row.as_slice().len())?;
        }
        self.aligner.push(slot_idx, secs, row);
        Ok(())
    }

    fn check_width(&mut self, width: usize) -> Result<(), ModuleError> {
        if self.dim == 0 {
            self.dim = width;
            self.means = CentroidBlock::zeroed(width, self.history.len());
            self.baseline = vec![0.0; width];
            self.mad = vec![0.0; width];
        } else if width != self.dim {
            return Err(ModuleError::Other(format!(
                "inconsistent metric vector width: {} then {width}",
                self.dim
            )));
        }
        Ok(())
    }

    /// Drains aligned rows, evaluating a window every `slide` rows (flat
    /// mode) or re-ranking on every aligned set of rack summaries (rack
    /// mode — the rack aggregators already windowed).
    fn process_aligned(&mut self, emit: &mut Emitter<'_>) -> Result<(), ModuleError> {
        if self.rack_nodes > 0 {
            self.process_aligned_rack(emit)
        } else {
            self.process_aligned_flat(emit);
            Ok(())
        }
    }

    fn process_aligned_flat(&mut self, emit: &mut Emitter<'_>) {
        let n_nodes = self.history.len();
        while let Some((t, row)) = self.aligner.pop_aligned() {
            for (node, v) in row.into_iter().enumerate() {
                self.history[node].push_back(v);
                if self.history[node].len() > self.window {
                    self.history[node].pop_front();
                }
            }
            self.rows_since_eval += 1;
            let warm = self.history.iter().all(|h| h.len() >= self.window);
            if !warm || self.rows_since_eval < self.slide {
                continue;
            }
            self.rows_since_eval = 0;

            // Windowed per-node means into the reused contiguous rows —
            // the same arithmetic `rack_agg` applies per rack.
            for node in 0..n_nodes {
                rack::windowed_mean_into(
                    self.history[node].iter().map(|v| v.as_slice()),
                    self.window,
                    self.means.row_mut(node),
                );
            }
            self.rank_and_emit(t, emit);
        }
    }

    /// Rack mode: every aligned set of rack summaries is one already-
    /// windowed evaluation. Summaries cover contiguous node ranges in
    /// ascending global order, so concatenating them rebuilds the flat
    /// mean matrix bitwise (see [`crate::rack`]).
    fn process_aligned_rack(&mut self, emit: &mut Emitter<'_>) -> Result<(), ModuleError> {
        while let Some((t, row)) = self.aligner.pop_aligned() {
            let mut at = 0;
            for rack_row in &row {
                let summary =
                    RackSummary::decode(rack_row.as_slice()).map_err(ModuleError::Other)?;
                if self.dim == 0 {
                    self.dim = summary.dim;
                    self.means = CentroidBlock::zeroed(summary.dim, self.rack_nodes);
                    self.baseline = vec![0.0; summary.dim];
                    self.mad = vec![0.0; summary.dim];
                } else if summary.dim != self.dim {
                    return Err(ModuleError::Other(format!(
                        "inconsistent rack metric width: {} then {}",
                        self.dim, summary.dim
                    )));
                }
                if at + summary.n_nodes > self.rack_nodes {
                    return Err(ModuleError::Other(format!(
                        "rack summaries cover more than the declared {} nodes",
                        self.rack_nodes
                    )));
                }
                for local in 0..summary.n_nodes {
                    self.means
                        .row_mut(at + local)
                        .copy_from_slice(&summary.means[local * self.dim..][..self.dim]);
                }
                at += summary.n_nodes;
            }
            if at != self.rack_nodes {
                return Err(ModuleError::Other(format!(
                    "rack summaries cover {at} nodes, expected {}",
                    self.rack_nodes
                )));
            }
            self.rank_and_emit(t, emit);
        }
        Ok(())
    }

    /// Peer baseline + MAD + deviation ranking over the mean matrix —
    /// identical on the flat and rack paths.
    fn rank_and_emit(&mut self, t: u64, emit: &mut Emitter<'_>) {
        rack::peer_baseline_into(
            &self.means,
            &mut self.baseline,
            &mut self.mad,
            &mut self.col,
        );
        let ts = asdf_core::time::Timestamp::from_secs(t);
        for node in 0..self.rank_ports.len() {
            self.ranked.clear();
            let mean = self.means.row(node);
            for (d, m) in mean.iter().enumerate() {
                let base = self.baseline[d];
                let floor = MAD_FLOOR_FRACTION * (1.0 + base.abs());
                let dev = (m - base).abs() / (self.mad[d] + floor);
                self.ranked.push((d, dev));
            }
            self.ranked
                .sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            self.out_row.clear();
            for &(d, dev) in self.ranked.iter().take(self.top) {
                self.out_row.push(d as f64);
                self.out_row.push(dev);
            }
            emit.emit_row_at(self.rank_ports[node], ts, &self.out_row);
        }
    }
}

impl Default for MetricRank {
    fn default() -> Self {
        MetricRank::new()
    }
}

impl Module for MetricRank {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.window = ctx.parse_param_or("window", 60usize)?;
        if self.window == 0 {
            return Err(ModuleError::invalid_parameter("window", "must be positive"));
        }
        self.slide = ctx.parse_param_or("slide", self.window)?;
        if self.slide == 0 {
            return Err(ModuleError::invalid_parameter("slide", "must be positive"));
        }
        self.top = ctx.parse_param_or("top", 5usize)?;
        if self.top == 0 {
            return Err(ModuleError::invalid_parameter("top", "must be positive"));
        }

        let n_slots = ctx.input_slots().len();
        if let Some(nodes) = ctx.param("nodes") {
            // Rack mode: inputs are `rack_agg` summaries covering
            // contiguous node ranges in ascending global order; `nodes`
            // names every fleet node so the per-node rank ports keep
            // their origins.
            let names: Vec<String> = nodes
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            if names.len() < 3 {
                return Err(ModuleError::BadInputs(format!(
                    "peer baseline needs >= 3 nodes, got {}",
                    names.len()
                )));
            }
            if n_slots == 0 {
                return Err(ModuleError::BadInputs(
                    "rack mode needs at least one rack summary input".to_owned(),
                ));
            }
            self.rack_nodes = names.len();
            for (i, name) in names.into_iter().enumerate() {
                self.rank_ports
                    .push(ctx.declare_output_with_origin(format!("rank{i}"), name));
            }
            self.aligner = Aligner::new(n_slots);
            self.col = Vec::with_capacity(self.rack_nodes);
            return Ok(());
        }

        let n_nodes = n_slots;
        if n_nodes < 3 {
            return Err(ModuleError::BadInputs(format!(
                "peer baseline needs >= 3 nodes, got {n_nodes}"
            )));
        }
        for i in 0..n_nodes {
            let (slot, sources) = &ctx.input_slots()[i];
            let origin = sources
                .first()
                .map(|m| m.origin.clone())
                .unwrap_or_else(|| slot.clone());
            self.rank_ports
                .push(ctx.declare_output_with_origin(format!("rank{i}"), origin));
        }
        self.aligner = Aligner::new(n_nodes);
        self.history = vec![VecDeque::new(); n_nodes];
        self.col = Vec::with_capacity(n_nodes);
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        let (drain, mut emit) = ctx.drain_and_emit();
        for (slot_idx, env) in drain {
            self.push_envelope(slot_idx, env.sample.timestamp.as_secs(), &env.sample.value)?;
        }
        self.process_aligned(&mut emit)
    }

    /// Columnar delivery: the per-node collector edges are the campaign's
    /// highest-volume edges, so batch runs hand whole [`RowBlock`]s over.
    fn accepts_row_blocks(&self) -> bool {
        true
    }

    fn run_batch(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        // Queued envelopes are always older than backlog rows (engine
        // invariant), so draining them first preserves arrival order.
        let blocks = ctx.take_row_blocks();
        let (drain, mut emit) = ctx.drain_and_emit();
        for (slot_idx, env) in drain {
            self.push_envelope(slot_idx, env.sample.timestamp.as_secs(), &env.sample.value)?;
        }
        for (slot_idx, block) in blocks {
            for r in 0..block.len() {
                let secs = block.stamps[r].as_secs();
                if self.rack_nodes == 0 {
                    self.check_width(block.row(r).len())?;
                }
                self.aligner
                    .push(slot_idx, secs, MetricRow::Block(Arc::clone(&block), r));
            }
        }
        self.process_aligned(&mut emit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_core::config::Config;
    use asdf_core::dag::Dag;
    use asdf_core::engine::TickEngine;
    use asdf_core::registry::ModuleRegistry;
    use asdf_core::time::TickDuration;

    /// Per-node vector source: every node emits [1, 2, 3, 4]; the culprit
    /// adds `bump` to metric 2 after `after` seconds.
    struct VecNode {
        port: Option<PortId>,
        t: u64,
    }
    impl Module for VecNode {
        fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
            let origin: String = ctx.require_param("origin")?.to_owned();
            self.port = Some(ctx.declare_output_with_origin("out", origin));
            ctx.request_periodic(TickDuration::SECOND);
            Ok(())
        }
        fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
            self.t += 1;
            ctx.emit(self.port.unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
            Ok(())
        }
    }

    struct DeviantVecNode {
        port: Option<PortId>,
        t: u64,
        after: u64,
    }
    impl Module for DeviantVecNode {
        fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
            self.after = ctx.parse_param("after")?;
            self.port = Some(ctx.declare_output_with_origin("out", "culprit"));
            ctx.request_periodic(TickDuration::SECOND);
            Ok(())
        }
        fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
            self.t += 1;
            let mut v = vec![1.0, 2.0, 3.0, 4.0];
            if self.t > self.after {
                v[2] += 50.0;
            }
            ctx.emit(self.port.unwrap(), v);
            Ok(())
        }
    }

    fn registry() -> ModuleRegistry {
        let mut reg = ModuleRegistry::new();
        crate::register_analysis_modules(&mut reg);
        reg.register("vecnode", || Box::new(VecNode { port: None, t: 0 }));
        reg.register("deviantvec", || {
            Box::new(DeviantVecNode {
                port: None,
                t: 0,
                after: 0,
            })
        });
        reg
    }

    fn three_node_config(after: u64, top: usize) -> String {
        format!(
            "\
[vecnode]
id = n0
origin = peer0

[vecnode]
id = n1
origin = peer1

[deviantvec]
id = n2
after = {after}

[metric_rank]
id = mr
window = 10
top = {top}
input[m0] = n0.out
input[m1] = n1.out
input[m2] = n2.out
"
        )
    }

    fn run(cfg: &str, secs: u64) -> Vec<asdf_core::module::Envelope> {
        let parsed: Config = cfg.parse().unwrap();
        let dag = Dag::build(&registry(), &parsed).unwrap();
        let mut eng = TickEngine::new(dag);
        let tap = eng.tap("mr").unwrap();
        eng.run_for(TickDuration::from_secs(secs)).unwrap();
        tap.drain()
    }

    fn ranks_of(out: &[asdf_core::module::Envelope], port: &str) -> Vec<Vec<f64>> {
        out.iter()
            .filter(|e| e.source.name == port)
            .map(|e| e.sample.value.as_vector().unwrap().to_vec())
            .collect()
    }

    #[test]
    fn deviant_metric_tops_the_culprit_ranking() {
        let out = run(&three_node_config(5, 2), 40);
        let culprit = ranks_of(&out, "rank2");
        assert!(!culprit.is_empty());
        let last = culprit.last().unwrap();
        assert_eq!(last.len(), 4, "top=2 emits [idx, score] * 2: {last:?}");
        assert_eq!(last[0], 2.0, "metric 2 must rank first: {last:?}");
        assert!(last[1] > 10.0, "deviation score should be large: {last:?}");
        // Healthy peers see near-zero deviations everywhere.
        for port in ["rank0", "rank1"] {
            let last = ranks_of(&out, port).last().unwrap().clone();
            assert!(last[1] < 1.0, "{port} should be quiet: {last:?}");
        }
    }

    #[test]
    fn healthy_cluster_ranks_deterministically_by_index() {
        // All nodes identical: every deviation is 0, so ties resolve to
        // metric indices in ascending order.
        let out = run(&three_node_config(100_000, 3), 20);
        for port in ["rank0", "rank1", "rank2"] {
            for row in ranks_of(&out, port) {
                assert_eq!(row, vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0], "{port}");
            }
        }
    }

    #[test]
    fn origin_follows_the_input_node() {
        let out = run(&three_node_config(5, 1), 20);
        let origins: std::collections::HashSet<&str> =
            out.iter().map(|e| e.source.origin.as_str()).collect();
        assert!(origins.contains("peer0"));
        assert!(origins.contains("culprit"));
    }

    #[test]
    fn rack_mode_is_bitwise_equal_to_flat() {
        // Four nodes (one deviant), flat wiring vs two racks tree-reduced
        // through rack_agg: the rank streams must match bitwise.
        let nodes = "\
[vecnode]
id = n0
origin = peer0

[vecnode]
id = n1
origin = peer1

[vecnode]
id = n2
origin = peer2

[deviantvec]
id = n3
after = 5
";
        let flat = format!(
            "{nodes}
[metric_rank]
id = mr
window = 10
top = 3
input[m0] = n0.out
input[m1] = n1.out
input[m2] = n2.out
input[m3] = n3.out
"
        );
        let rack = format!(
            "{nodes}
[rack_agg]
id = ra0
window = 10
input[m0] = n0.out
input[m1] = n1.out

[rack_agg]
id = ra1
window = 10
input[m0] = n2.out
input[m1] = n3.out

[metric_rank]
id = mr
top = 3
nodes = peer0,peer1,peer2,culprit
input[r0] = ra0.sum
input[r1] = ra1.sum
"
        );
        let project =
            |out: &[asdf_core::module::Envelope]| -> Vec<(String, String, u64, Vec<f64>)> {
                out.iter()
                    .map(|e| {
                        (
                            e.source.name.clone(),
                            e.source.origin.clone(),
                            e.sample.timestamp.as_secs(),
                            e.sample.value.as_vector().unwrap().to_vec(),
                        )
                    })
                    .collect()
            };
        let flat_out = project(&run(&flat, 40));
        let rack_out = project(&run(&rack, 40));
        assert!(!flat_out.is_empty());
        assert_eq!(flat_out, rack_out);
    }

    #[test]
    fn config_validation() {
        for cfg in [
            // too few peers
            "[vecnode]\nid = n0\norigin = a\n\n[vecnode]\nid = n1\norigin = b\n\n[metric_rank]\nid = mr\ninput[m0] = n0.out\ninput[m1] = n1.out\n".to_owned(),
            // zero window / top
            three_node_config(0, 1).replace("window = 10", "window = 0"),
            three_node_config(0, 1).replace("top = 1", "top = 0"),
        ] {
            let parsed: Config = cfg.parse().unwrap();
            assert!(Dag::build(&registry(), &parsed).is_err(), "should reject");
        }
    }

    #[test]
    fn scalar_inputs_are_rejected_at_runtime() {
        let cfg = three_node_config(0, 1).replace(
            "[vecnode]\nid = n0\norigin = peer0",
            "[scalarnode]\nid = n0\norigin = peer0",
        );
        let mut reg = registry();
        struct ScalarNode {
            port: Option<PortId>,
        }
        impl Module for ScalarNode {
            fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
                let origin: String = ctx.require_param("origin")?.to_owned();
                self.port = Some(ctx.declare_output_with_origin("out", origin));
                ctx.request_periodic(TickDuration::SECOND);
                Ok(())
            }
            fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
                ctx.emit(self.port.unwrap(), 1.0);
                Ok(())
            }
        }
        reg.register("scalarnode", || Box::new(ScalarNode { port: None }));
        let parsed: Config = cfg.parse().unwrap();
        let dag = Dag::build(&reg, &parsed).unwrap();
        let mut eng = TickEngine::new(dag);
        let err = eng.run_for(TickDuration::from_secs(5)).unwrap_err();
        assert_eq!(err.instance, "mr");
    }
}
