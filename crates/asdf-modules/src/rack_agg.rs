//! The `rack_agg` tree-reduce stage for fleet-scale peer comparison.
//!
//! One instance per rack, wired to the rack's per-node collector edges
//! (`m0`, `m1`, …). Every `slide` aligned samples (once all nodes carry a
//! full `window`), it computes each node's windowed per-metric mean with
//! the exact arithmetic of the flat `metric_rank` path
//! ([`crate::rack::windowed_mean_into`]) and emits one self-describing
//! summary row `[k, dim, means…]` ([`crate::rack::RackSummary`]) on the
//! `sum` port.
//!
//! A downstream `metric_rank` in rack mode (its `nodes` parameter set)
//! concatenates the rack summaries back into the flat mean matrix and runs
//! the identical baseline/MAD/deviation ranking — bitwise equal to the
//! flat wiring, while the global DAG stage moves O(racks) rows instead of
//! O(nodes) metric vectors per evaluation.
//!
//! Configuration parameters:
//!
//! * `window` — samples per window (default 60);
//! * `slide` — samples between evaluations (default = `window`).

use std::collections::VecDeque;
use std::sync::Arc;

use asdf_core::error::ModuleError;
use asdf_core::module::{Emitter, InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::value::Value;
use hadoop_logs::sync::Aligner;

use crate::metric_rank::MetricRow;
use crate::rack;

/// Per-rack windowed-mean summarizer (see the module docs).
#[derive(Debug)]
pub struct RackAgg {
    window: usize,
    slide: usize,
    aligner: Aligner<MetricRow>,
    history: Vec<VecDeque<MetricRow>>,
    rows_since_eval: usize,
    /// Metric vector width, discovered from the first sample.
    dim: usize,
    /// Emission scratch: `[k, dim, means…]`.
    out_row: Vec<f64>,
    /// Per-node mean scratch.
    mean: Vec<f64>,
    out: Option<PortId>,
}

impl RackAgg {
    /// Creates an unconfigured instance.
    pub fn new() -> Self {
        RackAgg {
            window: 0,
            slide: 0,
            aligner: Aligner::new(1),
            history: Vec::new(),
            rows_since_eval: 0,
            dim: 0,
            out_row: Vec::new(),
            mean: Vec::new(),
            out: None,
        }
    }

    fn push_envelope(
        &mut self,
        slot_idx: usize,
        secs: u64,
        value: &Value,
    ) -> Result<(), ModuleError> {
        let row = match value {
            Value::Vector(v) => MetricRow::Owned(Arc::clone(v)),
            other => {
                return Err(ModuleError::Other(format!(
                    "rack_agg expects vector samples, got {}",
                    other.type_name()
                )))
            }
        };
        self.check_width(row.as_slice().len())?;
        self.aligner.push(slot_idx, secs, row);
        Ok(())
    }

    fn check_width(&mut self, width: usize) -> Result<(), ModuleError> {
        if self.dim == 0 {
            self.dim = width;
            self.mean = vec![0.0; width];
        } else if width != self.dim {
            return Err(ModuleError::Other(format!(
                "inconsistent metric vector width: {} then {width}",
                self.dim
            )));
        }
        Ok(())
    }

    /// Drains aligned rows, emitting one rack summary every `slide` rows
    /// once every node's window is full — the same cadence as the flat
    /// `metric_rank`, so the rack path evaluates at identical timestamps.
    fn process_aligned(&mut self, emit: &mut Emitter<'_>) {
        let k = self.history.len();
        while let Some((t, row)) = self.aligner.pop_aligned() {
            for (node, v) in row.into_iter().enumerate() {
                self.history[node].push_back(v);
                if self.history[node].len() > self.window {
                    self.history[node].pop_front();
                }
            }
            self.rows_since_eval += 1;
            let warm = self.history.iter().all(|h| h.len() >= self.window);
            if !warm || self.rows_since_eval < self.slide {
                continue;
            }
            self.rows_since_eval = 0;

            self.out_row.clear();
            self.out_row.push(k as f64);
            self.out_row.push(self.dim as f64);
            for node in 0..k {
                rack::windowed_mean_into(
                    self.history[node].iter().map(|v| v.as_slice()),
                    self.window,
                    &mut self.mean,
                );
                self.out_row.extend_from_slice(&self.mean);
            }
            let ts = asdf_core::time::Timestamp::from_secs(t);
            emit.emit_row_at(self.out.expect("initialized"), ts, &self.out_row);
        }
    }
}

impl Default for RackAgg {
    fn default() -> Self {
        RackAgg::new()
    }
}

impl Module for RackAgg {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.window = ctx.parse_param_or("window", 60usize)?;
        if self.window == 0 {
            return Err(ModuleError::invalid_parameter("window", "must be positive"));
        }
        self.slide = ctx.parse_param_or("slide", self.window)?;
        if self.slide == 0 {
            return Err(ModuleError::invalid_parameter("slide", "must be positive"));
        }
        let k = ctx.input_slots().len();
        if k == 0 {
            return Err(ModuleError::BadInputs(
                "rack_agg needs at least one node input".to_owned(),
            ));
        }
        // The summary's origin is the rack's first node — downstream
        // rack-mode `metric_rank` re-labels per node from its own list.
        let (slot, sources) = &ctx.input_slots()[0];
        let origin = sources
            .first()
            .map(|m| m.origin.clone())
            .unwrap_or_else(|| slot.clone());
        self.out = Some(ctx.declare_output_with_origin("sum", origin));
        self.aligner = Aligner::new(k);
        self.history = vec![VecDeque::new(); k];
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        let (drain, mut emit) = ctx.drain_and_emit();
        for (slot_idx, env) in drain {
            self.push_envelope(slot_idx, env.sample.timestamp.as_secs(), &env.sample.value)?;
        }
        self.process_aligned(&mut emit);
        Ok(())
    }

    /// Columnar delivery: rack aggregators sit directly on the fleet's
    /// highest-volume edges, so batch runs hand whole row blocks over.
    fn accepts_row_blocks(&self) -> bool {
        true
    }

    fn run_batch(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        // Queued envelopes are always older than backlog rows (engine
        // invariant), so draining them first preserves arrival order.
        let blocks = ctx.take_row_blocks();
        let (drain, mut emit) = ctx.drain_and_emit();
        for (slot_idx, env) in drain {
            self.push_envelope(slot_idx, env.sample.timestamp.as_secs(), &env.sample.value)?;
        }
        for (slot_idx, block) in blocks {
            for r in 0..block.len() {
                let secs = block.stamps[r].as_secs();
                self.check_width(block.row(r).len())?;
                self.aligner
                    .push(slot_idx, secs, MetricRow::Block(Arc::clone(&block), r));
            }
        }
        self.process_aligned(&mut emit);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rack::RackSummary;
    use asdf_core::config::Config;
    use asdf_core::dag::Dag;
    use asdf_core::engine::TickEngine;
    use asdf_core::registry::ModuleRegistry;
    use asdf_core::time::TickDuration;

    /// Emits `[base, 2·base]` every second.
    struct VecNode {
        port: Option<PortId>,
        base: f64,
    }
    impl Module for VecNode {
        fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
            self.base = ctx.parse_param("base")?;
            self.port = Some(ctx.declare_output_with_origin("out", format!("n{}", self.base)));
            ctx.request_periodic(TickDuration::SECOND);
            Ok(())
        }
        fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
            ctx.emit(self.port.unwrap(), vec![self.base, 2.0 * self.base]);
            Ok(())
        }
    }

    fn registry() -> ModuleRegistry {
        let mut reg = ModuleRegistry::new();
        crate::register_analysis_modules(&mut reg);
        reg.register("vecnode", || {
            Box::new(VecNode {
                port: None,
                base: 0.0,
            })
        });
        reg
    }

    #[test]
    fn summaries_carry_per_node_windowed_means() {
        let cfg: Config = "\
[vecnode]
id = n0
base = 1

[vecnode]
id = n1
base = 3

[rack_agg]
id = ra
window = 4
input[m0] = n0.out
input[m1] = n1.out
"
        .parse()
        .unwrap();
        let dag = Dag::build(&registry(), &cfg).unwrap();
        let mut eng = TickEngine::new(dag);
        let tap = eng.tap("ra").unwrap();
        eng.run_for(TickDuration::from_secs(9)).unwrap();
        let out = tap.drain();
        assert_eq!(out.len(), 2, "two non-overlapping 4-sample windows");
        for env in &out {
            let row = env.sample.value.as_vector().unwrap();
            let s = RackSummary::decode(row).unwrap();
            assert_eq!((s.n_nodes, s.dim), (2, 2));
            // Constant inputs: the mean is the input itself.
            assert_eq!(s.means, vec![1.0, 2.0, 3.0, 6.0]);
        }
    }

    #[test]
    fn config_validation() {
        for cfg in [
            "[vecnode]\nid = n0\nbase = 1\n\n[rack_agg]\nid = ra\nwindow = 0\ninput[m0] = n0.out\n",
            "[rack_agg]\nid = ra\n",
        ] {
            let parsed: Config = cfg.parse().unwrap();
            assert!(Dag::build(&registry(), &parsed).is_err(), "should reject");
        }
    }
}
