//! Data-collection modules: `cluster_driver`, `sadc`, and `hadoop_log`.
//!
//! The collection side of the paper's Figure 4 DAGs. In the reproduction
//! the monitored system is the simulated cluster, so one extra module
//! exists that a real deployment would not have: `cluster_driver`, which
//! advances the simulation by one second per engine tick and emits a clock
//! pulse. Collector modules wired to that pulse sample *after* the tick,
//! giving the same data/collection ordering a real deployment gets from
//! wall-clock scheduling.
//!
//! * `cluster_driver` — no inputs; output `tick` (Int = simulation time);
//! * `sadc` — params: `node` (index); optional input `clock`; output
//!   `output0` = the flattened 120-metric vector, origin = node hostname;
//! * `hadoop_log` — params: `node`, `daemon` (`tasktracker`/`datanode`);
//!   optional input `clock`; output `output0` = per-state count vector;
//! * `strace` — params: `node`; optional input `clock`; output `output0` =
//!   per-category syscall counts for the node's tasktracker process tree
//!   (the paper's §5 future-work module).

use asdf_core::error::ModuleError;
use asdf_core::module::{InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::time::TickDuration;
use asdf_rpc::daemons::{ClusterHandle, Collector, HadoopLogRpcd, LogDaemon, SadcRpcd, StraceRpcd};

/// Shared collector scheduling: free-run once per second without a clock
/// input, trigger per pulse with one.
fn schedule_collector(ctx: &mut InitCtx<'_>, kind: &str) -> Result<(), ModuleError> {
    match ctx.input_slots().len() {
        0 => ctx.request_periodic(TickDuration::SECOND),
        1 => ctx.set_input_trigger(1),
        n => {
            return Err(ModuleError::BadInputs(format!(
                "{kind} takes at most one clock input, got {n}"
            )))
        }
    }
    Ok(())
}

/// Shared collector run body: consume the clock pulse, poll the daemon
/// through the generic [`Collector`] contract, and emit the value vector
/// columnar (consecutive snapshots pack into one row block under a
/// batching engine instead of one `Vec`-allocating envelope per poll).
fn poll_collector(
    daemon: &mut (dyn Collector + Send),
    ctx: &mut RunCtx<'_>,
    out: PortId,
) -> Result<(), ModuleError> {
    ctx.discard_pending();
    let snap = daemon
        .poll_sample()
        .map_err(|e| ModuleError::Other(format!("{}_rpcd poll failed: {e}", daemon.kind())))?;
    if let Some(snap) = snap {
        ctx.emit_row(out, &snap.values);
    }
    Ok(())
}

/// Advances the simulated cluster one second per engine tick and emits a
/// clock pulse that downstream collectors trigger on.
pub struct ClusterDriver {
    cluster: ClusterHandle,
    out: Option<PortId>,
}

impl ClusterDriver {
    /// Creates a driver for `cluster`.
    pub fn new(cluster: ClusterHandle) -> Self {
        ClusterDriver { cluster, out: None }
    }
}

impl Module for ClusterDriver {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        ctx.expect_input_count(0)?;
        self.out = Some(ctx.declare_output("tick"));
        ctx.request_periodic(TickDuration::SECOND);
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        self.cluster.tick();
        ctx.emit(self.out.unwrap(), self.cluster.now() as i64 - 1);
        Ok(())
    }
}

/// The black-box collector: polls `sadc_rpcd` for one node's metric vector.
pub struct Sadc {
    cluster: ClusterHandle,
    daemon: Option<Box<dyn Collector + Send>>,
    out: Option<PortId>,
}

impl Sadc {
    /// Creates a collector for `cluster` (node chosen by the `node` config
    /// parameter at init).
    pub fn new(cluster: ClusterHandle) -> Self {
        Sadc {
            cluster,
            daemon: None,
            out: None,
        }
    }
}

impl Module for Sadc {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        let node: usize = ctx.parse_param("node")?;
        if node >= self.cluster.n_slaves() {
            return Err(ModuleError::invalid_parameter(
                "node",
                format!("cluster has {} slaves", self.cluster.n_slaves()),
            ));
        }
        let daemon = SadcRpcd::connect(self.cluster.clone(), node)
            .map_err(|e| ModuleError::Other(format!("sadc_rpcd connect failed: {e}")))?;
        let origin = self.cluster.slave_name(node);
        self.out = Some(ctx.declare_output_with_origin("output0", origin));
        self.daemon = Some(Box::new(daemon));
        schedule_collector(ctx, "sadc")
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        let daemon = self.daemon.as_mut().expect("initialized");
        poll_collector(daemon.as_mut(), ctx, self.out.unwrap())
    }
}

/// The white-box collector: polls `hadoop_log_rpcd` for one node's state
/// counts from one daemon's log.
pub struct HadoopLog {
    cluster: ClusterHandle,
    daemon: Option<Box<dyn Collector + Send>>,
    out: Option<PortId>,
}

impl HadoopLog {
    /// Creates a collector for `cluster` (node/daemon chosen by config).
    pub fn new(cluster: ClusterHandle) -> Self {
        HadoopLog {
            cluster,
            daemon: None,
            out: None,
        }
    }
}

impl Module for HadoopLog {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        let node: usize = ctx.parse_param("node")?;
        if node >= self.cluster.n_slaves() {
            return Err(ModuleError::invalid_parameter(
                "node",
                format!("cluster has {} slaves", self.cluster.n_slaves()),
            ));
        }
        let which = match ctx.require_param("daemon")? {
            "tasktracker" => LogDaemon::TaskTracker,
            "datanode" => LogDaemon::DataNode,
            other => {
                return Err(ModuleError::invalid_parameter(
                    "daemon",
                    format!("expected tasktracker|datanode, got `{other}`"),
                ))
            }
        };
        let daemon = HadoopLogRpcd::connect(self.cluster.clone(), node, which)
            .map_err(|e| ModuleError::Other(format!("hadoop_log_rpcd connect failed: {e}")))?;
        let origin = self.cluster.slave_name(node);
        self.out = Some(ctx.declare_output_with_origin("output0", origin));
        self.daemon = Some(Box::new(daemon));
        schedule_collector(ctx, "hadoop_log")
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        let daemon = self.daemon.as_mut().expect("initialized");
        poll_collector(daemon.as_mut(), ctx, self.out.unwrap())
    }
}

/// The syscall-trace collector: polls `strace_rpcd` for one node's
/// per-category syscall counts — the paper's future-work strace module.
///
/// The emitted vectors feed the same peer-comparison analyses as every
/// other data source (`mavgvec` → `analysis_wb`): a hung-but-spinning task
/// shows up as a node whose syscall profile flatlines relative to its
/// peers.
pub struct Strace {
    cluster: ClusterHandle,
    daemon: Option<Box<dyn Collector + Send>>,
    out: Option<PortId>,
}

impl Strace {
    /// Creates a collector for `cluster` (node chosen by config).
    pub fn new(cluster: ClusterHandle) -> Self {
        Strace {
            cluster,
            daemon: None,
            out: None,
        }
    }
}

impl Module for Strace {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        let node: usize = ctx.parse_param("node")?;
        if node >= self.cluster.n_slaves() {
            return Err(ModuleError::invalid_parameter(
                "node",
                format!("cluster has {} slaves", self.cluster.n_slaves()),
            ));
        }
        let daemon = StraceRpcd::connect(self.cluster.clone(), node)
            .map_err(|e| ModuleError::Other(format!("strace_rpcd connect failed: {e}")))?;
        let origin = self.cluster.slave_name(node);
        self.out = Some(ctx.declare_output_with_origin("output0", origin));
        self.daemon = Some(Box::new(daemon));
        schedule_collector(ctx, "strace")
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        let daemon = self.daemon.as_mut().expect("initialized");
        poll_collector(daemon.as_mut(), ctx, self.out.unwrap())
    }
}

#[cfg(test)]
mod tests {
    use asdf_core::config::Config;
    use asdf_core::dag::Dag;
    use asdf_core::engine::TickEngine;
    use asdf_core::registry::ModuleRegistry;
    use asdf_core::time::TickDuration;
    use asdf_rpc::daemons::ClusterHandle;
    use hadoop_sim::cluster::{Cluster, ClusterConfig};

    fn handle(slaves: usize) -> ClusterHandle {
        ClusterHandle::new(Cluster::new(ClusterConfig::new(slaves, 31), Vec::new()))
    }

    fn registry(h: &ClusterHandle) -> ModuleRegistry {
        let mut reg = ModuleRegistry::new();
        crate::register_all(&mut reg, h.clone());
        reg
    }

    #[test]
    fn driver_ticks_the_cluster_once_per_engine_second() {
        let h = handle(2);
        let cfg: Config = "[cluster_driver]\nid = drv\n".parse().unwrap();
        let dag = Dag::build(&registry(&h), &cfg).unwrap();
        let mut eng = TickEngine::new(dag);
        eng.run_for(TickDuration::from_secs(10)).unwrap();
        assert_eq!(h.now(), 10);
    }

    #[test]
    fn sadc_emits_metric_vectors_with_node_origin() {
        let h = handle(3);
        let cfg: Config = "\
[cluster_driver]
id = drv

[sadc]
id = sadc1
node = 1
input[clock] = drv.tick
"
        .parse()
        .unwrap();
        let dag = Dag::build(&registry(&h), &cfg).unwrap();
        let mut eng = TickEngine::new(dag);
        let tap = eng.tap("sadc1").unwrap();
        eng.run_for(TickDuration::from_secs(5)).unwrap();
        let out = tap.drain();
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].source.origin, "slave01");
        assert_eq!(out[0].sample.value.as_vector().unwrap().len(), 120);
    }

    #[test]
    fn hadoop_log_emits_per_daemon_state_vectors() {
        let h = handle(2);
        let cfg: Config = "\
[cluster_driver]
id = drv

[hadoop_log]
id = hl_tt
node = 0
daemon = tasktracker
input[clock] = drv.tick

[hadoop_log]
id = hl_dn
node = 0
daemon = datanode
input[clock] = drv.tick
"
        .parse()
        .unwrap();
        let dag = Dag::build(&registry(&h), &cfg).unwrap();
        let mut eng = TickEngine::new(dag);
        let tt = eng.tap("hl_tt").unwrap();
        let dn = eng.tap("hl_dn").unwrap();
        eng.run_for(TickDuration::from_secs(120)).unwrap();
        let tt_out = tt.drain();
        let dn_out = dn.drain();
        assert_eq!(tt_out.len(), 120);
        assert_eq!(tt_out[0].sample.value.as_vector().unwrap().len(), 6);
        assert_eq!(dn_out[0].sample.value.as_vector().unwrap().len(), 3);
        // Some task activity must be visible over two minutes.
        let total: f64 = tt_out
            .iter()
            .flat_map(|e| e.sample.value.as_vector().unwrap().to_vec())
            .sum();
        assert!(total > 0.0);
    }

    #[test]
    fn invalid_node_or_daemon_fails_init() {
        let h = handle(2);
        for cfg in [
            "[sadc]\nid = s\nnode = 9\n",
            "[hadoop_log]\nid = hl\nnode = 0\ndaemon = bogus\n",
            "[hadoop_log]\nid = hl\nnode = 0\n",
        ] {
            let parsed: Config = cfg.parse().unwrap();
            assert!(
                Dag::build(&registry(&h), &parsed).is_err(),
                "should reject: {cfg}"
            );
        }
    }

    #[test]
    fn collectors_can_free_run_periodically_without_a_clock() {
        let h = handle(2);
        let cfg: Config = "[cluster_driver]\nid = drv\n\n[sadc]\nid = s\nnode = 0\n"
            .parse()
            .unwrap();
        let dag = Dag::build(&registry(&h), &cfg).unwrap();
        let mut eng = TickEngine::new(dag);
        let tap = eng.tap("s").unwrap();
        eng.run_for(TickDuration::from_secs(4)).unwrap();
        // Driver is listed first, so the frame exists by the time sadc runs.
        assert_eq!(tap.drain().len(), 4);
    }

    #[test]
    fn strace_emits_syscall_vectors_with_node_origin() {
        let h = handle(3);
        let cfg: Config = "\
[cluster_driver]
id = drv

[strace]
id = st1
node = 1
input[clock] = drv.tick
"
        .parse()
        .unwrap();
        let dag = Dag::build(&registry(&h), &cfg).unwrap();
        let mut eng = TickEngine::new(dag);
        let tap = eng.tap("st1").unwrap();
        eng.run_for(TickDuration::from_secs(30)).unwrap();
        let out = tap.drain();
        assert_eq!(out.len(), 30);
        assert_eq!(out[0].source.origin, "slave01");
        assert_eq!(
            out[0].sample.value.as_vector().unwrap().len(),
            procsim::syscalls::SYSCALL_CATEGORY_COUNT
        );
    }
}
