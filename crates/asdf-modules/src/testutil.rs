//! Shared test fixtures for module unit tests.

use asdf_core::config::Config;
use asdf_core::dag::Dag;
use asdf_core::engine::TickEngine;
use asdf_core::error::ModuleError;
use asdf_core::module::{Envelope, InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::registry::ModuleRegistry;
use asdf_core::time::TickDuration;

/// A periodic source emitting the vector `[t+1, 2(t+1)]` each second, with
/// origin `test-node`.
pub struct VectorSource {
    port: Option<PortId>,
    n: i64,
}

impl Module for VectorSource {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.port = Some(ctx.declare_output_with_origin("out", "test-node"));
        ctx.request_periodic(TickDuration::SECOND);
        Ok(())
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
        self.n += 1;
        let x = self.n as f64;
        ctx.emit(self.port.unwrap(), vec![x, 2.0 * x]);
        Ok(())
    }
}

/// A periodic source emitting the scalar `t+1` each second.
pub struct ScalarSource {
    port: Option<PortId>,
    n: i64,
}

impl Module for ScalarSource {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.port = Some(ctx.declare_output_with_origin("out", "test-node"));
        ctx.request_periodic(TickDuration::SECOND);
        Ok(())
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
        self.n += 1;
        ctx.emit(self.port.unwrap(), self.n as f64);
        Ok(())
    }
}

/// A periodic source emitting `burst` two-component rows per second
/// through `emit_row` — the columnar entry point — so batched engines
/// deliver multi-row [`asdf_core::module::RowBlock`]s downstream.
pub struct BurstRowSource {
    port: Option<PortId>,
    burst: usize,
    n: i64,
}

impl Module for BurstRowSource {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.port = Some(ctx.declare_output_with_origin("out", "test-node"));
        self.burst = ctx.parse_param_or("burst", 4)?;
        ctx.request_periodic(TickDuration::SECOND);
        Ok(())
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
        for _ in 0..self.burst {
            self.n += 1;
            let x = self.n as f64;
            ctx.emit_row(self.port.unwrap(), &[x, 2.0 * x]);
        }
        Ok(())
    }
}

/// Registry with every standard module plus `vecsource`.
pub fn vector_source_registry() -> ModuleRegistry {
    let mut reg = base_registry();
    reg.register("vecsource", || Box::new(VectorSource { port: None, n: 0 }));
    reg
}

/// Registry with every standard module plus `burstrows`.
pub fn burst_source_registry() -> ModuleRegistry {
    let mut reg = base_registry();
    reg.register("burstrows", || {
        Box::new(BurstRowSource {
            port: None,
            burst: 4,
            n: 0,
        })
    });
    reg
}

/// Registry with every standard module plus `scalarsource`.
pub fn scalar_source_registry() -> ModuleRegistry {
    let mut reg = base_registry();
    reg.register("scalarsource", || {
        Box::new(ScalarSource { port: None, n: 0 })
    });
    reg
}

fn base_registry() -> ModuleRegistry {
    let mut reg = ModuleRegistry::new();
    crate::register_analysis_modules(&mut reg);
    reg
}

/// Builds the DAG from `cfg`, taps `tap_id`, runs `ticks` seconds, and
/// returns everything the tapped instance emitted.
pub fn run_source_pipeline(
    registry: &ModuleRegistry,
    cfg: &str,
    tap_id: &str,
    ticks: u64,
) -> Vec<Envelope> {
    run_source_pipeline_batched(registry, cfg, tap_id, ticks, 1)
}

/// [`run_source_pipeline`] with an explicit engine batch size, for
/// comparing a module's batched (row-block) path against the per-sample
/// reference.
pub fn run_source_pipeline_batched(
    registry: &ModuleRegistry,
    cfg: &str,
    tap_id: &str,
    ticks: u64,
    batch: usize,
) -> Vec<Envelope> {
    let parsed: Config = cfg.parse().expect("test config parses");
    let dag = Dag::build(registry, &parsed).expect("test config builds");
    let mut engine = TickEngine::new(dag);
    engine.set_batch_size(batch);
    let tap = engine.tap(tap_id).expect("tap target exists");
    engine
        .run_for(TickDuration::from_secs(ticks))
        .expect("test pipeline runs");
    tap.drain()
}
