//! The `knn` analysis module.
//!
//! Paper §3.6: "The knn (k-nearest neighbors) module is used to match
//! sample points with centroids corresponding to known system states. It
//! takes as configuration parameters k, a list of centroids, and a standard
//! deviation vector ... For each input sample s, a vector s′ is computed as
//! `s′_i = log(1+s_i)/σ_i` and the Euclidean distance between s′ and each
//! centroid is computed. The indices of the k nearest centroids to s′ ...
//! are output."
//!
//! Configuration parameters:
//!
//! * `centroids` — clusters separated by `|`, components by `,`
//!   (as rendered by [`crate::training::BlackBoxModel::centroids_param`]);
//! * `stddev` — comma-separated scaling vector;
//! * `k` — neighbors to output (default 1; `output0` carries the nearest
//!   index as an `Int`, and for `k > 1` a `Vector` of indices instead).

use asdf_core::error::ModuleError;
use asdf_core::module::{InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::time::Timestamp;
use asdf_core::value::{Sample, Value};

use crate::kernel::CentroidBlock;
use crate::training::{BlackBoxModel, Classifier};

/// 1-NN / k-NN workload-state classifier.
///
/// Holds a [`Classifier`] context so the per-tick path reuses its scaling
/// and ranking buffers instead of allocating per sample. Under a batched
/// engine, [`Module::run_batch`] packs the whole pending tick-range into a
/// columnar [`CentroidBlock`] and feeds full query rows to the
/// `argmin_dist2` kernel scan — bitwise identical to the per-sample path.
#[derive(Debug, Default)]
pub struct Knn {
    classifier: Option<Classifier>,
    k: usize,
    out: Option<PortId>,
    /// Reused across ticks by `classify_k_into`.
    ranked: Vec<usize>,
    /// Columnar batch scratch: one padded query row per pending sample.
    batch_rows: CentroidBlock,
    /// Per-row timestamps matching `batch_rows`.
    batch_stamps: Vec<Timestamp>,
    /// Per-row 1-NN states from `classify_block_into`.
    batch_states: Vec<usize>,
}

impl Knn {
    /// Creates an unconfigured instance.
    pub fn new() -> Self {
        Knn::default()
    }
}

impl Module for Knn {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        let centroids = ctx.require_param("centroids")?.to_owned();
        let stddev = ctx.require_param("stddev")?.to_owned();
        let model = BlackBoxModel::from_params(&centroids, &stddev)
            .map_err(|e| ModuleError::invalid_parameter("centroids", e.to_string()))?;
        self.k = ctx.parse_param_or("k", 1usize)?;
        if self.k == 0 || self.k > model.n_states() {
            return Err(ModuleError::invalid_parameter(
                "k",
                format!("must be in 1..={}", model.n_states()),
            ));
        }
        ctx.expect_input_count(1)?;
        let origin = ctx.input_slots()[0].1[0].origin.clone();
        self.out = Some(ctx.declare_output_with_origin("output0", origin));
        self.batch_rows = CentroidBlock::with_dim(model.stddev.len());
        self.classifier = Some(model.into_classifier());
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        let classifier = self.classifier.as_mut().expect("initialized");
        let out = self.out.expect("initialized");
        let k = self.k;
        let (drain, mut emit) = ctx.drain_and_emit();
        for (_, env) in drain {
            let Some(raw) = env.sample.value.as_vector() else {
                return Err(ModuleError::Other(format!(
                    "knn expects vector samples, got {}",
                    env.sample.value.type_name()
                )));
            };
            if raw.len() != classifier.dim() {
                return Err(ModuleError::Other(format!(
                    "knn dimension mismatch: sample {} vs model {}",
                    raw.len(),
                    classifier.dim()
                )));
            }
            let ts = env.sample.timestamp;
            if k == 1 {
                let idx = classifier.classify(raw) as i64;
                emit.emit_sample(out, Sample::new(ts, idx));
            } else {
                classifier.classify_k_into(raw, k, &mut self.ranked);
                let idxs: Vec<f64> = self.ranked.iter().map(|&i| i as f64).collect();
                emit.emit_sample(out, Sample::new(ts, Value::from(idxs)));
            }
        }
        Ok(())
    }

    /// Opt into columnar delivery: upstream row batches arrive as shared
    /// [`asdf_core::module::RowBlock`]s instead of per-sample envelopes,
    /// and `run_batch` feeds their rows straight into the kernel scan.
    fn accepts_row_blocks(&self) -> bool {
        true
    }

    fn run_batch(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        // Queued envelopes first, then row blocks: the engine's per-slot
        // invariant is that backlog rows are always newer than anything in
        // the queue, so this is exactly the per-sample arrival order.
        let blocks = ctx.take_row_blocks();
        let classifier = self.classifier.as_mut().expect("initialized");
        let out = self.out.expect("initialized");
        // Pack the whole pending tick-range into the columnar scratch,
        // validating each sample exactly as the per-sample path does (the
        // first offending envelope raises the same error).
        self.batch_rows.clear();
        self.batch_stamps.clear();
        let (drain, mut emit) = ctx.drain_and_emit();
        for (_, env) in drain {
            let Some(raw) = env.sample.value.as_vector() else {
                return Err(ModuleError::Other(format!(
                    "knn expects vector samples, got {}",
                    env.sample.value.type_name()
                )));
            };
            if raw.len() != classifier.dim() {
                return Err(ModuleError::Other(format!(
                    "knn dimension mismatch: sample {} vs model {}",
                    raw.len(),
                    classifier.dim()
                )));
            }
            self.batch_rows.push_row(raw);
            self.batch_stamps.push(env.sample.timestamp);
        }
        for (_, block) in &blocks {
            if block.dim != classifier.dim() {
                return Err(ModuleError::Other(format!(
                    "knn dimension mismatch: sample {} vs model {}",
                    block.dim,
                    classifier.dim()
                )));
            }
            for (ts, row) in block.rows() {
                self.batch_rows.push_row(row);
                self.batch_stamps.push(ts);
            }
        }
        if self.k == 1 {
            // Full query rows through the fused kernel scan, back to back;
            // per row this is the same scale + argmin as `classify`, so
            // the emitted stream is bitwise identical to `run`'s.
            classifier.classify_block_into(&self.batch_rows, &mut self.batch_states);
            for (&ts, &idx) in self.batch_stamps.iter().zip(&self.batch_states) {
                emit.emit_sample(out, Sample::new(ts, idx as i64));
            }
        } else {
            for (r, &ts) in self.batch_stamps.iter().enumerate() {
                classifier.classify_k_into(self.batch_rows.row(r), self.k, &mut self.ranked);
                let idxs: Vec<f64> = self.ranked.iter().map(|&i| i as f64).collect();
                emit.emit_sample(out, Sample::new(ts, Value::from(idxs)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_source_pipeline, vector_source_registry};

    /// Model with centroids near log-scaled [1,2] and [8,16] streams.
    fn model_params() -> (String, String) {
        // Train on the exact stream the vecsource emits plus a far blob.
        let mut samples: Vec<Vec<f64>> = (1..=20).map(|t| vec![t as f64, 2.0 * t as f64]).collect();
        samples.extend((1..=20).map(|t| vec![5000.0 + t as f64, 9000.0]));
        let model = BlackBoxModel::fit(&samples, 2, 3);
        (model.centroids_param(), model.stddev_param())
    }

    #[test]
    fn one_nn_classifies_the_stream_consistently() {
        let (cents, sd) = model_params();
        let cfg = format!(
            "[vecsource]\nid = src\n\n[knn]\nid = onenn\ncentroids = {cents}\nstddev = {sd}\ninput[input] = src.out\n"
        );
        let out = run_source_pipeline(&vector_source_registry(), &cfg, "onenn", 10);
        assert_eq!(out.len(), 10);
        let states: Vec<i64> = out
            .iter()
            .map(|e| e.sample.value.as_int().unwrap())
            .collect();
        // All samples come from the near-stream workload: one state.
        assert!(states.windows(2).all(|w| w[0] == w[1]), "{states:?}");
        assert_eq!(out[0].source.origin, "test-node");
    }

    #[test]
    fn k_greater_than_one_emits_index_vectors() {
        let (cents, sd) = model_params();
        let cfg = format!(
            "[vecsource]\nid = src\n\n[knn]\nid = nn\nk = 2\ncentroids = {cents}\nstddev = {sd}\ninput[input] = src.out\n"
        );
        let out = run_source_pipeline(&vector_source_registry(), &cfg, "nn", 3);
        let v = out[0].sample.value.as_vector().unwrap();
        assert_eq!(v.len(), 2);
        assert_ne!(v[0], v[1]);
    }

    #[test]
    fn row_block_batches_match_per_sample_outputs() {
        use crate::testutil::{burst_source_registry, run_source_pipeline_batched};
        let (cents, sd) = model_params();
        // 9 rows per tick at batch 4: blocks of non-power-of-two lengths
        // reach the classifier's columnar path.
        let cfg = format!(
            "[burstrows]\nid = src\nburst = 9\n\n\
             [knn]\nid = nn\ncentroids = {cents}\nstddev = {sd}\ninput[input] = src.out\n"
        );
        let reg = burst_source_registry();
        let reference: Vec<_> = run_source_pipeline_batched(&reg, &cfg, "nn", 5, 1)
            .into_iter()
            .map(|e| (e.sample.timestamp, e.sample.value))
            .collect();
        assert_eq!(reference.len(), 45);
        for batch in [4, 64] {
            let got: Vec<_> = run_source_pipeline_batched(&reg, &cfg, "nn", 5, batch)
                .into_iter()
                .map(|e| (e.sample.timestamp, e.sample.value))
                .collect();
            assert_eq!(got, reference, "batch {batch} diverged from per-sample");
        }
    }

    #[test]
    fn invalid_configuration_fails_init() {
        use asdf_core::config::Config;
        use asdf_core::dag::Dag;
        let (cents, sd) = model_params();
        for cfg in [
            // k out of range
            format!("[vecsource]\nid = s\n\n[knn]\nid = n\nk = 9\ncentroids = {cents}\nstddev = {sd}\ninput[i] = s.out\n"),
            // missing centroids
            "[vecsource]\nid = s\n\n[knn]\nid = n\nstddev = 1.0,1.0\ninput[i] = s.out\n".to_owned(),
            // malformed centroids
            "[vecsource]\nid = s\n\n[knn]\nid = n\ncentroids = x|y\nstddev = 1.0\ninput[i] = s.out\n".to_owned(),
            // no input
            format!("[knn]\nid = n\ncentroids = {cents}\nstddev = {sd}\n"),
        ] {
            let parsed: Config = cfg.parse().unwrap();
            assert!(
                Dag::build(&vector_source_registry(), &parsed).is_err(),
                "should reject: {cfg}"
            );
        }
    }

    #[test]
    fn dimension_mismatch_is_a_runtime_error() {
        use asdf_core::config::Config;
        use asdf_core::dag::Dag;
        use asdf_core::engine::TickEngine;
        use asdf_core::time::TickDuration;
        // Model expects 3 dims; source emits 2.
        let cfg = "\
[vecsource]
id = src

[knn]
id = nn
centroids = 1.0,2.0,3.0
stddev = 1.0,1.0,1.0
input[input] = src.out
";
        let parsed: Config = cfg.parse().unwrap();
        let dag = Dag::build(&vector_source_registry(), &parsed).unwrap();
        let mut engine = TickEngine::new(dag);
        let err = engine.run_for(TickDuration::from_secs(2)).unwrap_err();
        assert_eq!(err.instance, "nn");
    }
}
