//! The `analysis_bb` black-box fingerpointer.
//!
//! Paper §4.5: each node's metric vector is classified once per second to a
//! workload state (1-NN against k-means centroids — the upstream `knn`
//! module). Over a window of `windowSize` samples, the per-node state
//! histogram `StateVector_j` is formed; a component-wise median across
//! nodes gives `medianStateVector`; "we use the L1 distance of
//! `StateVector_j − medianStateVector` ... and flag a node j as anomalous
//! if \[it\] is greater than a pre-determined threshold."
//!
//! An alarm is raised only after `consecutive` anomalous windows (the paper
//! "took at least 3 consecutive windows to gain confidence", which sets the
//! ≈200 s fingerpointing-latency floor at windowSize 60).
//!
//! Configuration parameters:
//!
//! * `n_states` — number of workload states (centroids) — required;
//! * `window` — samples per window (default 60);
//! * `slide` — samples between evaluations (default = `window`);
//! * `threshold` — L1 alarm threshold (default 60);
//! * `consecutive` — anomalous windows required before alarming (default 3).
//!
//! Inputs: one slot per node (`l0`, `l1`, ...), each carrying per-second
//! state indices. Outputs per node: `alarm<i>` (Bool) and `dist<i>`
//! (Float, the raw L1 distance — lets threshold sweeps reuse one run).

use std::collections::VecDeque;

use asdf_core::error::ModuleError;
use asdf_core::module::{InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::value::Sample;
use hadoop_logs::sync::Aligner;

use crate::kernel::CentroidBlock;

/// Black-box peer-comparison fingerpointer.
#[derive(Debug)]
pub struct AnalysisBb {
    n_states: usize,
    window: usize,
    slide: usize,
    threshold: f64,
    consecutive: usize,
    aligner: Aligner<usize>,
    history: Vec<VecDeque<usize>>,
    anomalous_streak: Vec<usize>,
    rows_since_eval: usize,
    /// Per-node state histograms, one row per node — contiguous and
    /// reused (zeroed, not reallocated) every evaluation.
    hists: CentroidBlock,
    /// Component-wise median across nodes, reused every evaluation.
    median_hist: Vec<f64>,
    /// Per-state column scratch for the median.
    col: Vec<f64>,
    alarm_ports: Vec<PortId>,
    dist_ports: Vec<PortId>,
}

impl AnalysisBb {
    /// Creates an unconfigured instance.
    pub fn new() -> Self {
        AnalysisBb {
            n_states: 0,
            window: 0,
            slide: 0,
            threshold: 0.0,
            consecutive: 0,
            aligner: Aligner::new(1),
            history: Vec::new(),
            anomalous_streak: Vec::new(),
            rows_since_eval: 0,
            hists: CentroidBlock::default(),
            median_hist: Vec::new(),
            col: Vec::new(),
            alarm_ports: Vec::new(),
            dist_ports: Vec::new(),
        }
    }
}

impl Default for AnalysisBb {
    fn default() -> Self {
        AnalysisBb::new()
    }
}

/// Component-wise median; for even counts, the mean of the middle pair.
pub(crate) fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

impl Module for AnalysisBb {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.n_states = ctx.parse_param("n_states")?;
        if self.n_states == 0 {
            return Err(ModuleError::invalid_parameter(
                "n_states",
                "must be positive",
            ));
        }
        self.window = ctx.parse_param_or("window", 60usize)?;
        if self.window == 0 {
            return Err(ModuleError::invalid_parameter("window", "must be positive"));
        }
        self.slide = ctx.parse_param_or("slide", self.window)?;
        if self.slide == 0 {
            return Err(ModuleError::invalid_parameter("slide", "must be positive"));
        }
        self.threshold = ctx.parse_param_or("threshold", 60.0)?;
        self.consecutive = ctx.parse_param_or("consecutive", 3usize)?;
        if self.consecutive == 0 {
            return Err(ModuleError::invalid_parameter(
                "consecutive",
                "must be positive",
            ));
        }

        let n_nodes = ctx.input_slots().len();
        if n_nodes < 3 {
            return Err(ModuleError::BadInputs(format!(
                "peer comparison needs >= 3 nodes, got {n_nodes}"
            )));
        }
        for i in 0..n_nodes {
            let (slot, sources) = &ctx.input_slots()[i];
            let origin = sources
                .first()
                .map(|m| m.origin.clone())
                .unwrap_or_else(|| slot.clone());
            let alarm = ctx.declare_output_with_origin(format!("alarm{i}"), origin.clone());
            let dist = ctx.declare_output_with_origin(format!("dist{i}"), origin);
            self.alarm_ports.push(alarm);
            self.dist_ports.push(dist);
        }
        self.aligner = Aligner::new(n_nodes);
        self.history = vec![VecDeque::new(); n_nodes];
        self.anomalous_streak = vec![0; n_nodes];
        self.hists = CentroidBlock::zeroed(self.n_states, n_nodes);
        self.median_hist = vec![0.0; self.n_states];
        self.col = Vec::with_capacity(n_nodes);
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        let n_nodes = self.history.len();
        // Borrowing drain: the fan-in hot path ingests a whole tick-range
        // (one sample per node per tick, a full batch under a batched
        // engine) into the aligner without a per-run Vec; emissions happen
        // after the drain, once rows align.
        for (slot_idx, env) in ctx.drain_all() {
            let idx = env.sample.value.as_int().ok_or_else(|| {
                ModuleError::Other(format!(
                    "analysis_bb expects integer state indices, got {}",
                    env.sample.value.type_name()
                ))
            })?;
            if idx < 0 || idx as usize >= self.n_states {
                return Err(ModuleError::Other(format!(
                    "state index {idx} outside 0..{}",
                    self.n_states
                )));
            }
            self.aligner
                .push(slot_idx, env.sample.timestamp.as_secs(), idx as usize);
        }

        while let Some((t, row)) = self.aligner.pop_aligned() {
            for (node, idx) in row.into_iter().enumerate() {
                self.history[node].push_back(idx);
                if self.history[node].len() > self.window {
                    self.history[node].pop_front();
                }
            }
            self.rows_since_eval += 1;
            let warm = self.history.iter().all(|h| h.len() >= self.window);
            if !warm || self.rows_since_eval < self.slide {
                continue;
            }
            self.rows_since_eval = 0;

            // State histograms per node, into the reused contiguous rows.
            self.hists.zero();
            for node in 0..n_nodes {
                let hist = self.hists.row_mut(node);
                for &idx in self.history[node].iter() {
                    hist[idx] += 1.0;
                }
            }
            // Component-wise median across nodes.
            for s in 0..self.n_states {
                self.col.clear();
                self.col.extend(self.hists.rows().map(|h| h[s]));
                self.median_hist[s] = median(&mut self.col);
            }
            // L1 distances and alarms.
            let ts = asdf_core::time::Timestamp::from_secs(t);
            #[allow(clippy::needless_range_loop)] // four parallel per-node arrays
            for node in 0..n_nodes {
                let l1: f64 = self
                    .hists
                    .row(node)
                    .iter()
                    .zip(&self.median_hist)
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                let anomalous = l1 > self.threshold;
                if anomalous {
                    self.anomalous_streak[node] += 1;
                } else {
                    self.anomalous_streak[node] = 0;
                }
                let alarm = self.anomalous_streak[node] >= self.consecutive;
                ctx.emit_sample(self.dist_ports[node], Sample::new(ts, l1));
                ctx.emit_sample(self.alarm_ports[node], Sample::new(ts, alarm));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_core::config::Config;
    use asdf_core::dag::Dag;
    use asdf_core::engine::TickEngine;
    use asdf_core::registry::ModuleRegistry;
    use asdf_core::time::TickDuration;
    use asdf_core::value::Value;

    /// Per-node state source: node N cycles through healthy states; an
    /// optional deviant node emits a constant rare state after a start
    /// time.
    struct StateSource {
        port: Option<PortId>,
        t: u64,
    }
    impl Module for StateSource {
        fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
            let node: String = ctx.require_param("origin")?.to_owned();
            self.port = Some(ctx.declare_output_with_origin("out", node));
            ctx.request_periodic(TickDuration::SECOND);
            Ok(())
        }
        fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
            self.t += 1;
            ctx.emit(self.port.unwrap(), (self.t % 3) as i64);
            Ok(())
        }
    }

    struct DeviantSource {
        port: Option<PortId>,
        t: u64,
        deviate_after: u64,
    }
    impl Module for DeviantSource {
        fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
            self.deviate_after = ctx.parse_param("after")?;
            self.port = Some(ctx.declare_output_with_origin("out", "culprit"));
            ctx.request_periodic(TickDuration::SECOND);
            Ok(())
        }
        fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
            self.t += 1;
            let state = if self.t > self.deviate_after {
                3
            } else {
                (self.t % 3) as i64
            };
            ctx.emit(self.port.unwrap(), state);
            Ok(())
        }
    }

    fn registry() -> ModuleRegistry {
        let mut reg = ModuleRegistry::new();
        crate::register_analysis_modules(&mut reg);
        reg.register("statesource", || Box::new(StateSource { port: None, t: 0 }));
        reg.register("deviant", || {
            Box::new(DeviantSource {
                port: None,
                t: 0,
                deviate_after: 0,
            })
        });
        reg
    }

    fn three_peer_config(deviant_after: u64, threshold: f64, consecutive: usize) -> String {
        format!(
            "\
[statesource]
id = n0
origin = peer0

[statesource]
id = n1
origin = peer1

[deviant]
id = n2
after = {deviant_after}

[analysis_bb]
id = bb
n_states = 4
window = 10
threshold = {threshold}
consecutive = {consecutive}
input[l0] = n0.out
input[l1] = n1.out
input[l2] = n2.out
"
        )
    }

    fn run(cfg: &str, secs: u64) -> Vec<asdf_core::module::Envelope> {
        let parsed: Config = cfg.parse().unwrap();
        let dag = Dag::build(&registry(), &parsed).unwrap();
        let mut eng = TickEngine::new(dag);
        let tap = eng.tap("bb").unwrap();
        eng.run_for(TickDuration::from_secs(secs)).unwrap();
        tap.drain()
    }

    fn alarms_of<'a>(out: &'a [asdf_core::module::Envelope], port: &str) -> Vec<(&'a str, bool)> {
        out.iter()
            .filter(|e| e.source.name == port)
            .map(|e| (e.source.origin.as_str(), e.sample.value.as_bool().unwrap()))
            .collect()
    }

    #[test]
    fn healthy_peers_raise_no_alarms() {
        let out = run(&three_peer_config(100_000, 5.0, 1), 100);
        for port in ["alarm0", "alarm1", "alarm2"] {
            assert!(
                alarms_of(&out, port).iter().all(|(_, a)| !a),
                "no alarms expected on {port}"
            );
        }
        // Distances exist and are small.
        let dists: Vec<f64> = out
            .iter()
            .filter(|e| e.source.name.starts_with("dist"))
            .map(|e| e.sample.value.as_float().unwrap())
            .collect();
        assert!(!dists.is_empty());
        assert!(dists.iter().all(|&d| d <= 4.0), "{dists:?}");
    }

    #[test]
    fn deviant_node_is_fingerpointed_after_consecutive_windows() {
        let out = run(&three_peer_config(30, 5.0, 3), 120);
        let culprit = alarms_of(&out, "alarm2");
        assert!(
            culprit.iter().any(|(_, a)| *a),
            "culprit should eventually alarm: {culprit:?}"
        );
        assert!(culprit.iter().all(|(o, _)| *o == "culprit"));
        // Peers stay clean.
        assert!(alarms_of(&out, "alarm0").iter().all(|(_, a)| !a));
        assert!(alarms_of(&out, "alarm1").iter().all(|(_, a)| !a));
        // Confirmation takes at least `consecutive` windows after deviation.
        let first_alarm_idx = culprit.iter().position(|(_, a)| *a).unwrap();
        assert!(first_alarm_idx >= 2, "3-window confirmation: {culprit:?}");
    }

    #[test]
    fn consecutive_gating_suppresses_single_window_blips() {
        // Deviation starts so late that only ~2 anomalous windows fit: with
        // consecutive = 3 nothing may fire.
        let out = run(&three_peer_config(105, 5.0, 3), 120);
        assert!(alarms_of(&out, "alarm2").iter().all(|(_, a)| !a));
        // The same trace with consecutive = 1 does fire.
        let out = run(&three_peer_config(105, 5.0, 1), 120);
        assert!(alarms_of(&out, "alarm2").iter().any(|(_, a)| *a));
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut v = [1.0, 100.0, 2.0];
        assert_eq!(median(&mut v), 2.0);
        let mut v = [1.0, 2.0, 3.0, 100.0];
        assert_eq!(median(&mut v), 2.5);
        let mut v = [7.0];
        assert_eq!(median(&mut v), 7.0);
    }

    #[test]
    fn config_validation() {
        for cfg in [
            // too few peers
            "[statesource]\nid = n0\norigin = a\n\n[statesource]\nid = n1\norigin = b\n\n[analysis_bb]\nid = bb\nn_states = 4\ninput[l0] = n0.out\ninput[l1] = n1.out\n".to_owned(),
            // zero n_states
            three_peer_config(0, 5.0, 1).replace("n_states = 4", "n_states = 0"),
            // zero window
            three_peer_config(0, 5.0, 1).replace("window = 10", "window = 0"),
        ] {
            let parsed: Config = cfg.parse().unwrap();
            assert!(Dag::build(&registry(), &parsed).is_err(), "should reject");
        }
    }

    #[test]
    fn out_of_range_state_index_is_a_runtime_error() {
        // n_states = 2 but sources emit 0..=3.
        let cfg = three_peer_config(0, 5.0, 1).replace("n_states = 4", "n_states = 2");
        let parsed: Config = cfg.parse().unwrap();
        let dag = Dag::build(&registry(), &parsed).unwrap();
        let mut eng = TickEngine::new(dag);
        let err = eng.run_for(TickDuration::from_secs(20)).unwrap_err();
        assert_eq!(err.instance, "bb");
    }

    #[test]
    fn alarm_values_are_booleans_and_dists_floats() {
        let out = run(&three_peer_config(30, 5.0, 1), 60);
        for e in &out {
            if e.source.name.starts_with("alarm") {
                assert!(matches!(e.sample.value, Value::Bool(_)));
            } else {
                assert!(matches!(e.sample.value, Value::Float(_)));
            }
        }
    }
}
