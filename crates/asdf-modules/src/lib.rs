//! `asdf-modules` — the data-collection and analysis plug-ins of the ASDF
//! reproduction.
//!
//! Everything here implements the `fpt-core` plug-in API
//! ([`asdf_core::module::Module`]) and is wired by configuration, exactly
//! as in the paper's Figures 3–4:
//!
//! **Data collection** ([`collectors`]):
//! `cluster_driver` (ticks the simulated cluster), `sadc` (black-box
//! `/proc` metric vectors via `sadc_rpcd`), `hadoop_log` (white-box state
//! counts via `hadoop_log_rpcd`).
//!
//! **Analysis**: [`mavgvec`] (windowed mean/variance), [`knn`]
//! (`log(1+x)/σ`-scaled 1-NN workload classification), [`ibuffer`]
//! (rate-matching batches), [`analysis_bb`] (state-histogram L1 peer
//! comparison), [`analysis_wb`] (windowed-mean median comparison with the
//! `max(1, k·σ_median)` threshold), [`rack_agg`] (fleet-scale rack
//! tree-reduce feeding rack-mode [`metric_rank`]), [`print`](mod@print)
//! (alarm sink).
//!
//! **Offline training** ([`training`]): k-means centroid fitting on
//! fault-free traces, rendered to/from `knn` configuration parameters.
//!
//! **Distance kernels** ([`kernel`]): the contiguous
//! [`kernel::CentroidBlock`] storage and the 4-lane squared-distance
//! kernels behind every nearest-centroid scan.
//!
//! Use [`register_all`] to register every module type against a cluster
//! handle, or [`register_analysis_modules`] for just the cluster-agnostic
//! analysis modules.
//!
//! # Examples
//!
//! Wiring a custom source through `mavgvec` in the paper's configuration
//! dialect:
//!
//! ```
//! use asdf_core::prelude::*;
//!
//! // A source emitting [t, 10t] once per second.
//! struct Ramp { port: Option<PortId>, t: f64 }
//! impl Module for Ramp {
//!     fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
//!         self.port = Some(ctx.declare_output_with_origin("out", "node-a"));
//!         ctx.request_periodic(TickDuration::SECOND);
//!         Ok(())
//!     }
//!     fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
//!         self.t += 1.0;
//!         ctx.emit(self.port.unwrap(), vec![self.t, 10.0 * self.t]);
//!         Ok(())
//!     }
//! }
//!
//! let mut registry = ModuleRegistry::new();
//! asdf_modules::register_analysis_modules(&mut registry);
//! registry.register("ramp", || Box::new(Ramp { port: None, t: 0.0 }));
//!
//! let config: Config = "\
//! [ramp]
//! id = src
//!
//! [mavgvec]
//! id = avg
//! window = 4
//! emit = mean
//! input[input] = src.out
//! ".parse()?;
//!
//! let mut engine = TickEngine::new(Dag::build(&registry, &config)?);
//! let tap = engine.tap("avg").unwrap();
//! engine.run_for(TickDuration::from_secs(8))?;
//! let means = tap.drain();
//! assert_eq!(means.len(), 2); // two non-overlapping 4-sample windows
//! assert_eq!(means[0].sample.value.as_vector().unwrap()[0], 2.5);
//! assert_eq!(means[0].source.origin, "node-a");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis_bb;
pub mod analysis_wb;
pub mod collectors;
pub mod ibuffer;
pub mod kernel;
pub mod knn;
pub mod mavgvec;
pub mod metric_rank;
pub mod mitigate;
pub mod print;
pub mod rack;
pub mod rack_agg;
pub mod training;

#[cfg(test)]
pub(crate) mod testutil;

use asdf_core::registry::ModuleRegistry;
use asdf_rpc::daemons::ClusterHandle;

/// Registers the cluster-agnostic analysis module types:
/// `mavgvec`, `knn`, `ibuffer`, `analysis_bb`, `analysis_wb`,
/// `metric_rank`, `rack_agg`, `print`.
pub fn register_analysis_modules(registry: &mut ModuleRegistry) {
    registry.register("mavgvec", || Box::new(mavgvec::MavgVec::new()));
    registry.register("knn", || Box::new(knn::Knn::new()));
    registry.register("ibuffer", || Box::new(ibuffer::IBuffer::new()));
    registry.register("analysis_bb", || Box::new(analysis_bb::AnalysisBb::new()));
    registry.register("analysis_wb", || Box::new(analysis_wb::AnalysisWb::new()));
    registry.register("metric_rank", || Box::new(metric_rank::MetricRank::new()));
    registry.register("rack_agg", || Box::new(rack_agg::RackAgg::new()));
    registry.register("print", || Box::new(print::Print::new()));
}

/// Registers every module type, binding the collectors to `cluster`:
/// everything from [`register_analysis_modules`] plus `cluster_driver`,
/// `sadc`, `hadoop_log`, `strace`, and the alarm-driven `mitigate`
/// action module.
pub fn register_all(registry: &mut ModuleRegistry, cluster: ClusterHandle) {
    register_analysis_modules(registry);
    let h = cluster.clone();
    registry.register("cluster_driver", move || {
        Box::new(collectors::ClusterDriver::new(h.clone()))
    });
    let h = cluster.clone();
    registry.register("sadc", move || Box::new(collectors::Sadc::new(h.clone())));
    let h = cluster.clone();
    registry.register("hadoop_log", move || {
        Box::new(collectors::HadoopLog::new(h.clone()))
    });
    let h = cluster.clone();
    registry.register("strace", move || {
        Box::new(collectors::Strace::new(h.clone()))
    });
    let h = cluster;
    registry.register("mitigate", move || {
        Box::new(mitigate::Mitigate::new(h.clone()))
    });
}
