//! The `analysis_wb` white-box fingerpointer.
//!
//! Paper §4.4: per white-box metric, each node's windowed mean
//! (`mean_metric_i`) is compared against the across-node median
//! (`median_mean_metric`); node *i* is flagged when the difference exceeds
//! a threshold for one or more metrics. The threshold is
//! `max(1, k·σ_median)`, where `σ_median` is the median across nodes of the
//! per-node windowed standard deviation — with the explicit `max(1, ·)`
//! floor because "several white-box metrics tend to be constant in several
//! nodes", making the median σ zero and a bare `k·σ` threshold a
//! false-positive machine.
//!
//! Inputs: per node, a windowed-mean vector on slot `a<i>` and a windowed
//! standard-deviation vector on slot `d<i>` (produced by `mavgvec` with
//! `emit = both`). Outputs per node: `alarm<i>` (Bool) and `kcrit<i>`
//! (Float — the smallest `k` at which the node would *stop* being flagged,
//! `+inf` when a deviating metric has zero median-σ; lets k sweeps reuse
//! one run).
//!
//! Configuration parameters:
//!
//! * `k` — threshold multiplier (default 3, the paper's choice);
//! * `consecutive` — anomalous windows required before alarming
//!   (default 3, matching the black-box confirmation depth).

use asdf_core::error::ModuleError;
use asdf_core::module::{InitCtx, Module, PortId, RunCtx, RunReason};
use asdf_core::value::Sample;
use hadoop_logs::sync::Aligner;

use crate::analysis_bb::median;

/// White-box peer-comparison fingerpointer.
#[derive(Debug)]
pub struct AnalysisWb {
    k: f64,
    consecutive: usize,
    n_nodes: usize,
    /// Streams 0..n are means, n..2n are stddevs.
    aligner: Aligner<Vec<f64>>,
    anomalous_streak: Vec<usize>,
    alarm_ports: Vec<PortId>,
    kcrit_ports: Vec<PortId>,
    /// Maps envelope slot index -> aligner stream index.
    slot_to_stream: Vec<usize>,
}

impl AnalysisWb {
    /// Creates an unconfigured instance.
    pub fn new() -> Self {
        AnalysisWb {
            k: 0.0,
            consecutive: 0,
            n_nodes: 0,
            aligner: Aligner::new(1),
            anomalous_streak: Vec::new(),
            alarm_ports: Vec::new(),
            kcrit_ports: Vec::new(),
            slot_to_stream: Vec::new(),
        }
    }
}

impl Default for AnalysisWb {
    fn default() -> Self {
        AnalysisWb::new()
    }
}

impl Module for AnalysisWb {
    fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
        self.k = ctx.parse_param_or("k", 3.0)?;
        if self.k < 0.0 {
            return Err(ModuleError::invalid_parameter("k", "must be non-negative"));
        }
        self.consecutive = ctx.parse_param_or("consecutive", 3usize)?;
        if self.consecutive == 0 {
            return Err(ModuleError::invalid_parameter(
                "consecutive",
                "must be positive",
            ));
        }

        // Slots: a<i> carry means, d<i> carry stddevs; indices must tile
        // 0..n completely.
        let slots = ctx.input_slots();
        let mut mean_slots: Vec<(usize, usize, String)> = Vec::new(); // (node, slot idx, origin)
        let mut sd_slots: Vec<(usize, usize)> = Vec::new();
        for (slot_idx, (name, sources)) in slots.iter().enumerate() {
            let origin = sources
                .first()
                .map(|m| m.origin.clone())
                .unwrap_or_default();
            if let Some(rest) = name.strip_prefix('a') {
                let node: usize = rest
                    .parse()
                    .map_err(|_| ModuleError::BadInputs(format!("bad mean slot name `{name}`")))?;
                mean_slots.push((node, slot_idx, origin));
            } else if let Some(rest) = name.strip_prefix('d') {
                let node: usize = rest.parse().map_err(|_| {
                    ModuleError::BadInputs(format!("bad stddev slot name `{name}`"))
                })?;
                sd_slots.push((node, slot_idx));
            } else {
                return Err(ModuleError::BadInputs(format!(
                    "analysis_wb slots must be a<i> (means) or d<i> (stddevs), got `{name}`"
                )));
            }
        }
        mean_slots.sort_by_key(|&(node, _, _)| node);
        sd_slots.sort_by_key(|&(node, _)| node);
        let n = mean_slots.len();
        if n < 3 {
            return Err(ModuleError::BadInputs(format!(
                "peer comparison needs >= 3 nodes, got {n}"
            )));
        }
        if sd_slots.len() != n
            || mean_slots
                .iter()
                .enumerate()
                .any(|(i, &(node, _, _))| node != i)
            || sd_slots.iter().enumerate().any(|(i, &(node, _))| node != i)
        {
            return Err(ModuleError::BadInputs(
                "mean slots a0..aN-1 and stddev slots d0..dN-1 must pair up".into(),
            ));
        }

        self.n_nodes = n;
        self.slot_to_stream = vec![0; slots.len()];
        for (node, slot_idx, origin) in &mean_slots {
            self.slot_to_stream[*slot_idx] = *node;
            let alarm = ctx.declare_output_with_origin(format!("alarm{node}"), origin.clone());
            let kcrit = ctx.declare_output_with_origin(format!("kcrit{node}"), origin.clone());
            self.alarm_ports.push(alarm);
            self.kcrit_ports.push(kcrit);
        }
        for (node, slot_idx) in &sd_slots {
            self.slot_to_stream[*slot_idx] = n + *node;
        }
        self.aligner = Aligner::new(2 * n);
        self.anomalous_streak = vec![0; n];
        Ok(())
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>, _reason: RunReason) -> Result<(), ModuleError> {
        let n = self.n_nodes;
        for (slot_idx, env) in ctx.take_all() {
            let Some(v) = env.sample.value.as_vector() else {
                return Err(ModuleError::Other(format!(
                    "analysis_wb expects vector samples, got {}",
                    env.sample.value.type_name()
                )));
            };
            self.aligner.push(
                self.slot_to_stream[slot_idx],
                env.sample.timestamp.as_secs(),
                v.to_vec(),
            );
        }

        while let Some((t, row)) = self.aligner.pop_aligned() {
            let (means, sds) = row.split_at(n);
            let dim = means[0].len();
            if means.iter().chain(sds.iter()).any(|v| v.len() != dim) {
                return Err(ModuleError::Other(
                    "inconsistent metric dimensions across nodes".into(),
                ));
            }
            // Medians per metric: of means and of stddevs.
            let mut median_mean = vec![0.0; dim];
            let mut median_sd = vec![0.0; dim];
            for m in 0..dim {
                let mut col: Vec<f64> = means.iter().map(|v| v[m]).collect();
                median_mean[m] = median(&mut col);
                let mut col: Vec<f64> = sds.iter().map(|v| v[m]).collect();
                median_sd[m] = median(&mut col);
            }
            let ts = asdf_core::time::Timestamp::from_secs(t);
            #[allow(clippy::needless_range_loop)] // several parallel per-node arrays
            for node in 0..n {
                // k_crit: the smallest k at which this node is NOT flagged.
                // Per metric: |diff| <= 1 never flags; σ_med = 0 with
                // |diff| > 1 always flags (k_crit = ∞); else flags while
                // k < |diff|/σ_med.
                let mut kcrit: f64 = 0.0;
                for m in 0..dim {
                    let diff = (means[node][m] - median_mean[m]).abs();
                    if diff <= 1.0 {
                        continue;
                    }
                    if median_sd[m] <= 1e-12 {
                        kcrit = f64::INFINITY;
                        break;
                    }
                    kcrit = kcrit.max(diff / median_sd[m]);
                }
                let anomalous = self.k < kcrit;
                if anomalous {
                    self.anomalous_streak[node] += 1;
                } else {
                    self.anomalous_streak[node] = 0;
                }
                let alarm = self.anomalous_streak[node] >= self.consecutive;
                ctx.emit_sample(self.kcrit_ports[node], Sample::new(ts, kcrit));
                ctx.emit_sample(self.alarm_ports[node], Sample::new(ts, alarm));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdf_core::config::Config;
    use asdf_core::dag::Dag;
    use asdf_core::engine::TickEngine;
    use asdf_core::registry::ModuleRegistry;
    use asdf_core::time::TickDuration;

    /// Emits a (mean, stddev) vector pair per second. The `bias` parameter
    /// shifts the mean after `after` seconds; `sd` sets the reported
    /// deviation.
    struct WbSource {
        mean_port: Option<PortId>,
        sd_port: Option<PortId>,
        t: u64,
        bias: f64,
        after: u64,
        sd: f64,
    }
    impl Module for WbSource {
        fn init(&mut self, ctx: &mut InitCtx<'_>) -> Result<(), ModuleError> {
            self.bias = ctx.parse_param_or("bias", 0.0)?;
            self.after = ctx.parse_param_or("after", 0u64)?;
            self.sd = ctx.parse_param_or("sd", 0.5)?;
            let origin: String = ctx.require_param("origin")?.to_owned();
            self.mean_port = Some(ctx.declare_output_with_origin("mean", origin.clone()));
            self.sd_port = Some(ctx.declare_output_with_origin("stddev", origin));
            ctx.request_periodic(TickDuration::SECOND);
            Ok(())
        }
        fn run(&mut self, ctx: &mut RunCtx<'_>, _: RunReason) -> Result<(), ModuleError> {
            self.t += 1;
            let bias = if self.t > self.after { self.bias } else { 0.0 };
            // Two metrics: one live, one constant across the cluster.
            ctx.emit(self.mean_port.unwrap(), vec![10.0 + bias, 2.0]);
            ctx.emit(self.sd_port.unwrap(), vec![self.sd, 0.0]);
            Ok(())
        }
    }

    fn registry() -> ModuleRegistry {
        let mut reg = ModuleRegistry::new();
        crate::register_analysis_modules(&mut reg);
        reg.register("wbsource", || {
            Box::new(WbSource {
                mean_port: None,
                sd_port: None,
                t: 0,
                bias: 0.0,
                after: 0,
                sd: 0.5,
            })
        });
        reg
    }

    fn config(culprit_bias: f64, after: u64, k: f64, consecutive: usize) -> String {
        format!(
            "\
[wbsource]
id = n0
origin = peer0

[wbsource]
id = n1
origin = peer1

[wbsource]
id = n2
origin = culprit
bias = {culprit_bias}
after = {after}

[analysis_wb]
id = wb
k = {k}
consecutive = {consecutive}
input[a0] = n0.mean
input[d0] = n0.stddev
input[a1] = n1.mean
input[d1] = n1.stddev
input[a2] = n2.mean
input[d2] = n2.stddev
"
        )
    }

    fn run(cfg: &str, secs: u64) -> Vec<asdf_core::module::Envelope> {
        let parsed: Config = cfg.parse().unwrap();
        let dag = Dag::build(&registry(), &parsed).unwrap();
        let mut eng = TickEngine::new(dag);
        let tap = eng.tap("wb").unwrap();
        eng.run_for(TickDuration::from_secs(secs)).unwrap();
        tap.drain()
    }

    fn alarms(out: &[asdf_core::module::Envelope], port: &str) -> Vec<bool> {
        out.iter()
            .filter(|e| e.source.name == port)
            .map(|e| e.sample.value.as_bool().unwrap())
            .collect()
    }

    #[test]
    fn healthy_cluster_raises_nothing() {
        let out = run(&config(0.0, 0, 3.0, 1), 30);
        for p in ["alarm0", "alarm1", "alarm2"] {
            assert!(alarms(&out, p).iter().all(|a| !a));
        }
    }

    #[test]
    fn biased_node_is_flagged_and_peers_are_not() {
        // Bias 5.0 vs σ_median 0.5: k_crit = 10 > k = 3 → flagged.
        let out = run(&config(5.0, 10, 3.0, 3), 40);
        let culprit = alarms(&out, "alarm2");
        assert!(
            culprit.iter().any(|a| *a),
            "culprit must alarm: {culprit:?}"
        );
        assert!(alarms(&out, "alarm0").iter().all(|a| !a));
        assert!(alarms(&out, "alarm1").iter().all(|a| !a));
        // Confirmation depth: first alarm no sooner than 3 windows in.
        let first = culprit.iter().position(|a| *a).unwrap();
        assert!(first >= 12, "10s dormant + 3 consecutive: {first}");
    }

    #[test]
    fn the_max_1_floor_suppresses_tiny_deviations() {
        // Bias 0.9 < 1: never flagged no matter how small σ is.
        let out = run(&config(0.9, 0, 0.0, 1), 30);
        assert!(alarms(&out, "alarm2").iter().all(|a| !a));
    }

    #[test]
    fn zero_median_sigma_with_real_deviation_always_flags() {
        // All nodes report sd = 0 (constant metrics), culprit deviates by 5.
        let cfg = config(5.0, 0, 100.0, 1).replace("sd = 0.5", "sd = 0.0");
        // Overwrite default sd on all sources.
        let cfg = cfg
            .replace("origin = peer0", "origin = peer0\nsd = 0.0")
            .replace("origin = peer1", "origin = peer1\nsd = 0.0")
            .replace("origin = culprit", "origin = culprit\nsd = 0.0");
        let out = run(&cfg, 20);
        // kcrit = ∞ beats any k.
        assert!(alarms(&out, "alarm2").iter().any(|a| *a));
        let kcrits: Vec<f64> = out
            .iter()
            .filter(|e| e.source.name == "kcrit2")
            .map(|e| e.sample.value.as_float().unwrap())
            .collect();
        assert!(kcrits.iter().any(|k| k.is_infinite()));
    }

    #[test]
    fn kcrit_reports_the_sweepable_boundary() {
        // diff 5.0, σ_median 0.5 → k_crit = 10: flagged for k<10, not k≥10.
        let out_low = run(&config(5.0, 0, 9.9, 1), 20);
        assert!(alarms(&out_low, "alarm2").iter().any(|a| *a));
        let out_high = run(&config(5.0, 0, 10.1, 1), 20);
        assert!(alarms(&out_high, "alarm2").iter().all(|a| !a));
        let kcrits: Vec<f64> = out_low
            .iter()
            .filter(|e| e.source.name == "kcrit2")
            .map(|e| e.sample.value.as_float().unwrap())
            .collect();
        assert!(kcrits.iter().any(|k| (k - 10.0).abs() < 1e-9), "{kcrits:?}");
    }

    #[test]
    fn slot_pairing_is_validated() {
        for mutilation in [
            // missing a stddev slot
            ("input[d2] = n2.stddev\n", ""),
            // bad slot name
            ("input[a0] = n0.mean", "input[x0] = n0.mean"),
        ] {
            let cfg = config(0.0, 0, 3.0, 1).replace(mutilation.0, mutilation.1);
            let parsed: Config = cfg.parse().unwrap();
            assert!(
                Dag::build(&registry(), &parsed).is_err(),
                "should reject mutilated config"
            );
        }
    }

    #[test]
    fn origins_flow_to_alarm_ports() {
        let out = run(&config(5.0, 0, 1.0, 1), 10);
        let origins: std::collections::HashSet<&str> = out
            .iter()
            .filter(|e| e.source.name.starts_with("alarm"))
            .map(|e| e.source.origin.as_str())
            .collect();
        assert_eq!(origins, ["peer0", "peer1", "culprit"].into_iter().collect());
    }
}
