# Developer entry points. `just verify` is the PR gate; everything it runs
# is also available through `scripts/verify.sh` on machines without just.

# Tier-1 recipe plus the sharded-engine differential suite, the kernel
# property suites, and a warnings-denied doc build of first-party crates.
verify:
    ./scripts/verify.sh

# Tier-1 only: format check, build, tests, lint.
tier1:
    cargo fmt --all -- --check
    cargo build --release
    cargo test -q
    cargo clippy --workspace --all-targets -- -D warnings

# The differential equivalence suite on its own (serial vs sharded engine,
# including a 4-thread pipeline pass and the golden figure fixtures).
equivalence:
    cargo test -p integration-tests --test shard_equivalence --test golden_figures

# The kernel property suites: SIMD distance kernels pinned bitwise to the
# 4-lane scalar reference, plus the classification-path equivalences.
kernel-props:
    cargo test -q -p asdf-modules --test kernel_prop --test dist2_prop --test classify_proptest

# The widened-fault-matrix suites: activation-model property tests, the
# golden per-fault scenarios with the metric-rank accuracy gate, and the
# trace-parser fixtures.
scenarios:
    cargo test -q -p integration-tests --test fault_props
    cargo test -p integration-tests --test scenario_matrix

# The fleet-scale suites on their own: the sim-shard x engine-thread x
# batch bitwise sweep, the rack tree-reduce vs flat ranking equivalence,
# and the 500-node rack-path fingerpointing scenario (the 5000-node row
# is measured by the perfsuite `fleet` block, not here).
fleet:
    cargo test -p integration-tests --test shard_equivalence -- sim_shards_compose rack_tree_reduce
    cargo test -p integration-tests --test scenario_matrix -- fleet_scale

# The N-tenant serve soak: healthy tenants bitwise-identical to their
# solo runs while a flooding tenant sheds, join/leave mid-run, graceful
# shutdown flush, and the 8-tenant scheduler-lag bound.
serve-soak:
    cargo test -p integration-tests --test serve_soak

# Concurrency model tests for the lock-free engine primitives (SPSC lane,
# spill stack, readiness wavefront) under the vendored loom facade. Uses a
# separate target dir so --cfg loom never invalidates the main build cache.
loom:
    CARGO_TARGET_DIR=target/loom RUSTFLAGS="--cfg loom" \
        cargo test -q -p asdf-core --test loom_lane

# Warnings-denied rustdoc build of the first-party crates (the vendored
# workspace members are excluded; they are not ours to lint).
docs:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
        -p asdf-core -p asdf-modules -p asdf -p asdf-obs -p bench \
        -p integration-tests -p asdf-examples

# Regenerate the golden campaign and scenario fixtures after an intended
# result change.
update-fixtures:
    UPDATE_FIXTURES=1 cargo test -p integration-tests --test golden_figures --test scenario_matrix

# Refresh BENCH_campaign.json (campaign, self-overhead, engine speedup).
bench:
    cargo run -p bench --bin perfsuite --release

# Run the perfsuite, append a schema-versioned record to the BENCH history,
# then run the watchdog over the series (advisory: always exits 0 unless
# the history itself is unreadable).
perfwatch:
    ./scripts/bench_record.sh
    cargo run --release -p asdf --bin asdf -- perfwatch

# The watchdog alone, over the already-recorded history.
perfwatch-report:
    cargo run --release -p asdf --bin asdf -- perfwatch
